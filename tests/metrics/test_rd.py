"""Tests for rate-distortion sweeps."""

from __future__ import annotations

import numpy as np

from repro.metrics import rate_distortion_sweep


class TestSweep:
    def test_monotone_tradeoff(self, smooth_field):
        curve = rate_distortion_sweep(smooth_field, "sz-lr", [1e-4, 1e-3, 1e-2])
        ratios = curve.column("ratio")
        psnrs = curve.column("psnr")
        assert ratios == sorted(ratios)
        assert psnrs == sorted(psnrs, reverse=True)

    def test_label_defaults_to_codec(self, smooth_field):
        curve = rate_distortion_sweep(smooth_field, "sz-interp", [1e-3])
        assert curve.label == "sz-interp"

    def test_custom_label(self, smooth_field):
        curve = rate_distortion_sweep(smooth_field, "sz-lr", [1e-3], label="mine")
        assert curve.label == "mine"

    def test_ssim_via_image_fn(self, smooth_field):
        def image_fn(vol):
            return vol[:, :, vol.shape[2] // 2]

        curve = rate_distortion_sweep(
            smooth_field, "sz-lr", [1e-4, 1e-2], image_fn=image_fn
        )
        s = [p.ssim for p in curve.points]
        assert all(v is not None for v in s)
        assert s[0] >= s[1]
        assert curve.points[0].r_ssim == 1.0 - s[0]

    def test_no_image_fn_ssim_none(self, smooth_field):
        curve = rate_distortion_sweep(smooth_field, "sz-lr", [1e-3])
        assert curve.points[0].ssim is None
        assert curve.points[0].r_ssim is None

    def test_bitrate_consistent(self, smooth_field):
        curve = rate_distortion_sweep(smooth_field, "sz-lr", [1e-3])
        p = curve.points[0]
        assert p.bitrate == 64.0 / p.ratio  # float64 input
