"""Tests for artifact-morphology metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics import blockiness, hausdorff_distance
from repro.viz import TriangleMesh, marching_cubes


class TestBlockiness:
    def test_white_noise_error_near_one(self, rng):
        a = rng.normal(size=(36, 36, 36))
        b = a + 0.01 * rng.normal(size=a.shape)
        assert 0.8 < blockiness(a, b, 6) < 1.25

    def test_block_constant_error_scores_high(self, rng):
        a = rng.normal(size=(36, 36))
        # Error constant within 6-blocks, jumping at boundaries.
        block_err = np.repeat(np.repeat(rng.normal(size=(6, 6)), 6, axis=0), 6, axis=1)
        b = a + 0.1 * block_err
        assert blockiness(a, b, 6) > 5.0

    def test_smooth_error_scores_low(self):
        a = np.zeros((48, 48))
        x, y = np.meshgrid(np.linspace(0, np.pi, 48), np.linspace(0, np.pi, 48), indexing="ij")
        b = a + 0.1 * np.sin(x) * np.sin(y)
        assert blockiness(a, b, 6) < 1.5

    def test_identical_arrays(self):
        a = np.zeros((24, 24))
        assert blockiness(a, a, 6) == 1.0

    def test_real_codecs_ordering(self):
        """SZ-L/R artifacts are blockier than SZ-Interp's (paper §3.3).

        Needs coherent multi-scale structure (white-noise residuals score
        ~1 for any codec), so this runs on the Nyx-like field.
        """
        from repro.compression import SZLR, SZInterp
        from repro.experiments.datasets import load_app

        data = load_app("nyx", 0.25).uniform_field()
        lr = SZLR(block_size=6)
        it = SZInterp()
        rec_lr = lr.decompress(lr.compress(data, 1e-2, mode="rel"))
        rec_it = it.decompress(it.compress(data, 1e-2, mode="rel"))
        score_lr = blockiness(data, rec_lr, 6)
        score_it = blockiness(data, rec_it, 6)
        assert score_lr > 1.2
        assert score_lr > score_it

    def test_shape_too_small(self):
        with pytest.raises(MetricError):
            blockiness(np.zeros((8, 8)), np.zeros((8, 8)), 6)

    def test_bad_block(self):
        with pytest.raises(MetricError):
            blockiness(np.zeros((24, 24)), np.zeros((24, 24)), 1)


class TestHausdorff:
    def _sphere(self, r: float) -> TriangleMesh:
        ax = np.linspace(-1, 1, 32)
        x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
        return marching_cubes(
            np.sqrt(x * x + y * y + z * z), r, spacing=2 / 31, origin=(-1, -1, -1)
        )

    def test_identical_zero(self):
        m = self._sphere(0.6)
        assert hausdorff_distance(m, m) == 0.0

    def test_concentric_spheres(self):
        a = self._sphere(0.5)
        b = self._sphere(0.7)
        d = hausdorff_distance(a, b)
        assert 0.15 < d < 0.3  # ~0.2 radius difference

    def test_symmetric(self):
        a = self._sphere(0.5)
        b = self._sphere(0.65)
        assert hausdorff_distance(a, b) == hausdorff_distance(b, a)

    def test_translation_detected(self):
        a = self._sphere(0.6)
        b = a.translated([0.1, 0.0, 0.0])
        d = hausdorff_distance(a, b)
        assert 0.05 < d <= 0.11

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            hausdorff_distance(self._sphere(0.6), TriangleMesh.empty())
