"""Write-path fault injection: ``FaultyBackend`` now wraps the write
side too, and the sharded writer's per-lane retry turns a transient
write fault into a rolled-back, retried, bit-identical step."""

from __future__ import annotations

import pytest

from repro.errors import TransientStorageError
from repro.faults import FaultPlan, FaultyBackend
from repro.insitu.sharded import ShardedSeriesReader, ShardedSeriesWriter
from repro.integrity import scrub
from repro.storage import LocalFileBackend, MemoryBackend

from tests.integrity.conftest import campaign_steps


def _no_sleep(_seconds: float) -> None:
    pass


def test_faulty_backend_injects_on_write_not_rollback(tmp_path):
    """write() consults the plan; seek/truncate/flush/close never do —
    a writer must always be able to roll back through the same handle
    that just faulted."""
    plan = FaultPlan()
    backend = FaultyBackend(MemoryBackend(), plan)
    plan.always(kind="transient")
    handle = backend.open_write("obj")
    with pytest.raises(TransientStorageError):
        handle.write(b"boom")
    # The rollback surface stays injection-free even under plan.always.
    handle.seek(0)
    handle.truncate()
    handle.flush()
    handle.close()
    plan.clear()
    handle = backend.open_write("obj")
    handle.write(b"fine")
    handle.close()
    reader = backend.open_read("obj")
    assert reader.read() == b"fine"
    reader.close()


def test_sharded_writer_retries_transient_write_faults(tmp_path):
    """A transient fault mid-append is rolled back and retried; the
    finished campaign is indistinguishable from a fault-free run."""
    steps = campaign_steps()[:4]
    truth = tmp_path / "truth.rphm"
    with ShardedSeriesWriter.create(
        truth, "sz-lr", 1e-3, n_shards=2, parallel="serial", parity=1,
        backend=LocalFileBackend(),
    ) as writer:
        for s, h in enumerate(steps):
            writer.append_step(h, step=s)

    plan = FaultPlan()
    plan.nth(3, match="*.rph2s", kind="transient")
    plan.nth(11, match="*.rph2s", kind="transient")
    faulty = tmp_path / "faulty.rphm"
    with ShardedSeriesWriter.create(
        faulty, "sz-lr", 1e-3, n_shards=2, parallel="serial", parity=1,
        backend=FaultyBackend(LocalFileBackend(), plan),
        sleep=_no_sleep,
    ) as writer:
        for s, h in enumerate(steps):
            writer.append_step(h, step=s)
    assert plan.faults == 2, "the schedule never fired (test is vacuous)"

    reader = ShardedSeriesReader.open(faulty)
    try:
        assert reader.n_steps == len(steps)
    finally:
        reader.close()
    # Shard files come out bit-identical to the fault-free run.
    for k in range(2):
        name = f"shard{k:03d}.rph2s"
        assert (tmp_path / f"faulty.{name}").read_bytes() == \
            (tmp_path / f"truth.{name}").read_bytes()
    assert scrub(faulty).clean


def test_sharded_writer_exhausts_retries_to_typed_error(tmp_path):
    plan = FaultPlan()
    writer = ShardedSeriesWriter.create(
        tmp_path / "doomed.rphm", "sz-lr", 1e-3, n_shards=2,
        parallel="serial", parity=0,
        backend=FaultyBackend(LocalFileBackend(), plan),
        retries=2, sleep=_no_sleep,
    )
    # Arm the outage only after create() has laid down the headers.
    plan.always(match="*.rph2s", kind="transient")
    try:
        with pytest.raises(TransientStorageError):
            writer.append_step(campaign_steps()[0], step=0)
        # One initial attempt + two retries per failing append.
        assert plan.faults >= 3
    finally:
        writer.abort()
