"""Parity shards and repair: the RPXP format's XOR arithmetic, the
manifest's overhead accounting, bit-exact reconstruction of every
single-loss damage class, the over-budget refusal, and parity's
survival through campaign recovery."""

from __future__ import annotations

import os
import random
import zlib

import pytest

from repro.amr.io import recover_series
from repro.errors import IntegrityError
from repro.insitu.sharded import ShardedSeriesReader, recover_sharded
from repro.integrity import (
    ParityReader,
    SegmentHealer,
    parity_groups,
    parity_names,
    repair_sharded,
    scrub,
    xor_blocks,
)

from tests.integrity.conftest import flip_byte

SEED = 20260808


# ---------------------------------------------------------------------------
# Format arithmetic.
# ---------------------------------------------------------------------------
def test_xor_blocks_pads_and_inverts():
    rng = random.Random(SEED)
    blocks = [bytes(rng.randrange(256) for _ in range(n)) for n in (40, 17, 33)]
    parity = xor_blocks(blocks)
    assert len(parity) == 40
    # XOR of the parity with all-but-one member recovers the member
    # (zero-padded to stripe width).
    lost = blocks[1]
    back = xor_blocks([parity, blocks[0], blocks[2]])
    assert back[: len(lost)] == lost
    assert all(b == 0 for b in back[len(lost):])


def test_parity_group_assignment_round_robins():
    assert parity_groups(6, 2) == [[0, 2, 4], [1, 3, 5]]
    names = parity_names("camp.rphm", 2)
    assert names == ["camp.parity000.rpxp", "camp.parity001.rpxp"]


# ---------------------------------------------------------------------------
# Write-path accounting.
# ---------------------------------------------------------------------------
def test_manifest_records_parity_accounting(campaign):
    reader = ShardedSeriesReader.open(campaign["manifest_path"])
    rows = reader.parity
    reader.close()
    assert len(rows) == len(campaign["parity"])
    for row in rows:
        pfile = campaign["root"] / row["name"]
        assert pfile.exists()
        # The byte-overhead accounting is the literal parity file size.
        assert row["bytes"] == pfile.stat().st_size
        assert row["stripes"] > 0
        assert set(row["members"]) <= set(campaign["shards"])


def test_parity_reader_stripe_crcs_match_shards(campaign):
    for name in campaign["parity"]:
        reader = ParityReader(str(campaign["root"] / name))
        try:
            assert reader.stripes, "parity file carries no stripes"
            for stripe in reader.stripes:
                blob = reader.parity_bytes(stripe, verify=True)
                members = []
                for m in stripe.members:
                    raw = (campaign["root"] / m.shard).read_bytes()
                    seg = raw[m.offset : m.offset + m.length]
                    assert zlib.crc32(seg) == m.crc32
                    members.append(seg)
                # The stored parity IS the XOR of its members.
                assert xor_blocks(members, length=stripe.length) == blob
        finally:
            reader.close()


# ---------------------------------------------------------------------------
# Repair: every single-loss damage class restores bit-exactly.
# ---------------------------------------------------------------------------
def _assert_shard_extents_pristine(campaign, shard):
    repaired = (campaign["root"] / shard).read_bytes()
    pristine = campaign["pristine"][shard]
    for step, offset, length in campaign["extents"][shard]:
        assert repaired[offset : offset + length] == \
            pristine[offset : offset + length], f"step {step} not bit-exact"


def test_bit_rot_repairs_bit_exact(campaign):
    shard = campaign["shards"][0]
    step, offset, length = campaign["extents"][shard][0]
    flip_byte(campaign["root"] / shard, offset + length // 3)
    dry = repair_sharded(campaign["manifest_path"])
    assert [d.step for d in dry.reconstructed] == [step]
    assert not dry.committed
    report = repair_sharded(campaign["manifest_path"], commit=True)
    assert report.committed and not report.unrecoverable
    _assert_shard_extents_pristine(campaign, shard)
    assert scrub(campaign["manifest_path"]).clean


def test_deleted_shard_resurrects_bit_exact(campaign):
    shard = campaign["shards"][1]
    os.remove(campaign["root"] / shard)
    report = repair_sharded(campaign["manifest_path"], commit=True)
    assert not report.unrecoverable
    assert {d.step for d in report.reconstructed} == {
        step for step, _, _ in campaign["extents"][shard]
    }
    _assert_shard_extents_pristine(campaign, shard)
    assert scrub(campaign["manifest_path"]).clean
    # The resurrected campaign reads like the original.
    reader = ShardedSeriesReader.open(campaign["manifest_path"])
    assert reader.n_steps == sum(len(v) for v in campaign["extents"].values())
    reader.close()


def test_multi_loss_is_refused_not_fabricated(campaign):
    for shard in campaign["shards"][:2]:
        os.remove(campaign["root"] / shard)
    report = repair_sharded(campaign["manifest_path"])
    assert report.unrecoverable
    blamed = {d.shard for d in report.unrecoverable}
    assert set(campaign["shards"][:2]) <= blamed
    for damage in report.unrecoverable:
        assert damage.blocked_by  # names the co-lost members


def test_repair_without_parity_raises_integrity_error(tmp_path):
    from repro.amr.io import write_sharded_series

    from tests.integrity.conftest import campaign_steps

    manifest = tmp_path / "bare.rphm"
    write_sharded_series(manifest, campaign_steps()[:2], "sz-lr", 1e-3,
                         n_shards=2, parallel="serial")
    with pytest.raises(IntegrityError, match="parity"):
        repair_sharded(manifest)


def test_recover_sharded_preserves_parity_rows(campaign):
    # Torn tail on one shard: recovery truncates it back to the sealed
    # prefix; offsets of sealed segments are unchanged, so the recovered
    # manifest must keep its parity rows (and still scrub clean).
    shard = campaign["root"] / campaign["shards"][2]
    with open(shard, "ab") as handle:
        handle.write(b"\x00" * 123)  # torn step: garbage past the seal
    recover_series(shard, commit=True)
    recover_sharded(campaign["manifest_path"], commit=True)
    reader = ShardedSeriesReader.open(campaign["manifest_path"])
    assert len(reader.parity) == len(campaign["parity"])
    reader.close()
    assert scrub(campaign["manifest_path"]).clean


# ---------------------------------------------------------------------------
# SegmentHealer: the serving layer's single-segment primitive.
# ---------------------------------------------------------------------------
def test_segment_healer_reconstructs_and_writes_back(campaign):
    shard = campaign["shards"][0]
    step, offset, length = campaign["extents"][shard][0]
    flip_byte(campaign["root"] / shard, offset + 5)
    rows = ShardedSeriesReader.open(campaign["manifest_path"]).parity
    healer = SegmentHealer(str(campaign["manifest_path"]), rows)
    try:
        member, blob = healer.heal(shard, step)
        pristine = campaign["pristine"][shard][offset : offset + length]
        assert blob == pristine
        assert healer.write_back(shard, member, blob)
    finally:
        healer.close()
    assert scrub(campaign["manifest_path"]).clean


def test_segment_healer_refuses_double_loss(campaign):
    from repro.insitu.sharded import parse_manifest

    shard0, shard1 = campaign["shards"][:2]
    os.remove(campaign["root"] / shard0)
    os.remove(campaign["root"] / shard1)
    # The manifest still opens: harvest the parity rows straight from it.
    man = parse_manifest(campaign["manifest_path"].read_bytes())
    healer = SegmentHealer(str(campaign["manifest_path"]),
                           man.get("parity") or [])
    try:
        step = campaign["extents"][shard0][0][0]
        with pytest.raises(IntegrityError):
            healer.heal(shard0, step)
    finally:
        healer.close()
