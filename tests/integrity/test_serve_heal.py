"""Self-healing serving: a ``QueryService`` over a parity-carrying
campaign reconstructs damaged or missing shard segments from the
surviving shards instead of failing (or reporting them ``missing``),
with every reconstruction visible in the repair accounting."""

from __future__ import annotations

import os

import pytest

from repro.compression.amr_codec import decompress_selection
from repro.serve import InProcessClient

from tests.integrity.conftest import flip_byte


@pytest.fixture(scope="session")
def truth(campaign_template):
    return decompress_selection(
        str(campaign_template["root"] / campaign_template["manifest"])
    )


def assert_byte_identical(served, truth):
    assert set(served) == set(truth), (
        f"missing {sorted(set(truth) - set(served))[:4]}, "
        f"extra {sorted(set(served) - set(truth))[:4]}"
    )
    for key, arr in served.items():
        assert arr.tobytes() == truth[key].tobytes(), key


def test_destroyed_shard_serves_complete_not_partial(campaign, truth):
    """The acceptance bar: one data shard destroyed outright, yet a plain
    (non-partial) query returns the complete, byte-exact selection, and
    the reconstructions are counted."""
    victim = campaign["shards"][1]
    os.remove(campaign["root"] / victim)
    with InProcessClient(str(campaign["manifest_path"])) as client:
        served, info = client.query_info()
        stats = client.stats()
    assert_byte_identical(served, truth)
    assert not info.partial and not info.missing
    expected = len(campaign["extents"][victim])
    assert info.repairs == expected
    assert stats["repairs"] == expected


def test_bit_rot_heals_mid_query(campaign, truth):
    """Damage discovered at execute time (catalog parses fine, payload
    crc fails) heals through the same path."""
    victim = campaign["shards"][0]
    step, offset, length = campaign["extents"][victim][0]
    flip_byte(campaign["root"] / victim, offset + length // 2)
    with InProcessClient(str(campaign["manifest_path"])) as client:
        served, info = client.query_info()
    assert_byte_identical(served, truth)
    assert info.repairs >= 1 and not info.missing


def test_healed_patches_are_cached(campaign, truth):
    victim = campaign["shards"][1]
    os.remove(campaign["root"] / victim)
    with InProcessClient(str(campaign["manifest_path"])) as client:
        client.query()
        first = client.stats()["repairs"]
        # Re-query only the dead shard's steps: served from cache, but the
        # catalog probe still fails over to parity per query.
        steps = [s for s, _, _ in campaign["extents"][victim]]
        served2, info2 = client.query_info(steps=steps)
    assert first >= 1
    assert_byte_identical(
        served2, {k: v for k, v in truth.items() if k[0] in steps}
    )


def test_heal_false_preserves_degraded_behavior(campaign, truth):
    victim = campaign["shards"][0]
    step, offset, length = campaign["extents"][victim][0]
    flip_byte(campaign["root"] / victim, offset + length // 2)
    with InProcessClient(str(campaign["manifest_path"]), heal=False) as client:
        served, info = client.query_info(partial=True)
    assert info.repairs == 0
    assert {m["step"] for m in info.missing} == {step}
    assert_byte_identical(
        served, {k: v for k, v in truth.items() if k[0] != step}
    )


def test_heal_write_back_restores_the_shard_file(campaign, truth):
    victim = campaign["shards"][0]
    step, offset, length = campaign["extents"][victim][0]
    flip_byte(campaign["root"] / victim, offset + 7)
    with InProcessClient(
        str(campaign["manifest_path"]), heal_write_back=True
    ) as client:
        served, info = client.query_info()
    assert_byte_identical(served, truth)
    assert info.repairs >= 1
    assert (campaign["root"] / victim).read_bytes() == \
        campaign["pristine"][victim]
    # A fresh service over the written-back campaign needs zero repairs.
    with InProcessClient(str(campaign["manifest_path"])) as client:
        served2, info2 = client.query_info()
    assert_byte_identical(served2, truth)
    assert info2.repairs == 0


def test_multi_loss_still_fails_typed(campaign):
    from repro.errors import ReproError

    for victim in campaign["shards"][:2]:
        os.remove(campaign["root"] / victim)
    with InProcessClient(str(campaign["manifest_path"])) as client:
        with pytest.raises(ReproError):
            client.query()
