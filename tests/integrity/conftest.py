"""Shared sources for the integrity suite: a parity-carrying campaign
template copied per test (damage tests mutate their copy), plus the
clean single-file variants the scrub property test walks."""

from __future__ import annotations

import os
import shutil

import numpy as np
import pytest

from repro.amr.io import write_series, write_sharded_series
from repro.insitu.series import SEAL_SIZE, SeriesReader
from repro.insitu.sharded import ShardedSeriesReader

from tests.conftest import make_sphere_hierarchy

N_STEPS = 6
N_SHARDS = 3
PARITY = 1


def step_hierarchy(s: int):
    """A two-level hierarchy whose data differs per step."""
    h = make_sphere_hierarchy(n=8)
    for level in h.levels:
        for p in level.patches("f"):
            p.data += 0.05 * (s + 1) * np.cos(p.data * (s + 1))
    return h


def campaign_steps():
    return [step_hierarchy(s) for s in range(N_STEPS)]


@pytest.fixture(scope="session")
def campaign_template(tmp_path_factory):
    """A pristine parity=1 campaign plus its byte/extent oracle."""
    root = tmp_path_factory.mktemp("integrity-template")
    manifest = root / "camp.rphm"
    write_sharded_series(
        manifest, campaign_steps(), "sz-lr", 1e-3,
        n_shards=N_SHARDS, parallel="serial", parity=PARITY,
    )
    reader = ShardedSeriesReader.open(manifest)
    shards = [os.path.basename(s) for s in reader.shards]
    parity = [row["name"] for row in reader.parity]
    reader.close()
    extents = {}
    for shard in shards:
        sub = SeriesReader.open(root / shard)
        extents[shard] = [
            (e.step, e.offset, e.length + SEAL_SIZE) for e in sub.step_entries
        ]
        sub.close()
    return {
        "root": root,
        "manifest": manifest.name,
        "shards": shards,
        "parity": parity,
        "extents": extents,
        "pristine": {
            name: (root / name).read_bytes() for name in (*shards, *parity)
        },
    }


@pytest.fixture
def campaign(campaign_template, tmp_path):
    """A fresh mutable copy of the template for one test."""
    work = tmp_path / "work"
    shutil.copytree(campaign_template["root"], work)
    return {**campaign_template, "root": work,
            "manifest_path": work / campaign_template["manifest"]}


def flip_byte(path, pos: int) -> None:
    blob = bytearray(path.read_bytes())
    blob[pos] ^= 0xFF
    path.write_bytes(bytes(blob))


@pytest.fixture(scope="session")
def series_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("integrity-series") / "run.rph2s"
    write_series(path, [step_hierarchy(s) for s in range(3)], "sz-lr", 1e-3)
    return path
