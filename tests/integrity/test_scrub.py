"""The scrub walker's two-sided property: zero findings on every clean
container variant, and a finding for every seeded corruption.

Every byte of the RPH2/RPH2S/RPHM/RPXP formats is covered by some
recorded checksum (stream and segment crcs, seal records, index/footer
crcs, manifest body crc, parity stripe crcs), so a single flipped byte
anywhere in a file must surface — silence on damage would make the
parity/repair layers above unsound.
"""

from __future__ import annotations

import os
import random
import shutil

import pytest

from repro.amr.io import recover_series, write_series
from repro.compression.amr_codec import compress_hierarchy
from repro.integrity import scrub
from repro.storage import MemoryBackend

from tests.integrity.conftest import flip_byte, step_hierarchy

SEED = 20260808


# ---------------------------------------------------------------------------
# Clean variants: zero findings.
# ---------------------------------------------------------------------------
def _snapshot(tmp_path, batch):
    path = tmp_path / f"snap-{batch}.rph2"
    path.write_bytes(
        compress_hierarchy(step_hierarchy(0), "sz-lr", 1e-3, batch=batch)
        .tobytes()
    )
    return path


@pytest.mark.parametrize("batch", ["patch", "level"])
def test_clean_snapshot_scrubs_zero_findings(tmp_path, batch):
    report = scrub(_snapshot(tmp_path, batch))
    assert report.clean, [f.describe() for f in report.findings]
    assert report.streams > 0 and report.bytes_verified > 0


def test_clean_series_scrubs_zero_findings(series_path):
    report = scrub(series_path)
    assert report.clean, [f.describe() for f in report.findings]
    assert report.segments == 3


def test_clean_campaign_scrubs_zero_findings(campaign):
    report = scrub(campaign["manifest_path"])
    assert report.clean, [f.describe() for f in report.findings]
    # The walk covered the manifest, every shard, and the parity file.
    assert report.objects == 1 + len(campaign["shards"]) + len(campaign["parity"])


def test_recovered_series_scrubs_zero_findings(tmp_path):
    path = tmp_path / "torn.rph2s"
    write_series(path, [step_hierarchy(s) for s in range(3)], "sz-lr", 1e-3)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) - 40])  # tear off footer + index tail
    recover_series(path, commit=True)
    report = scrub(path)
    assert report.clean, [f.describe() for f in report.findings]


def test_scrub_through_memory_backend(campaign):
    """The walker goes through any StorageBackend, not just local files."""
    mem = MemoryBackend()
    for name in (campaign["manifest"], *campaign["shards"], *campaign["parity"]):
        with mem.open_write(name) as handle:
            handle.write((campaign["root"] / name).read_bytes())
    report = scrub(campaign["manifest"], backend=mem)
    assert report.clean, [f.describe() for f in report.findings]


# ---------------------------------------------------------------------------
# Seeded corruptions: 100% flagged.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("target", ["shard", "manifest", "parity"])
def test_every_seeded_corruption_is_flagged(campaign, target, tmp_path):
    name = {
        "shard": campaign["shards"][0],
        "manifest": campaign["manifest"],
        "parity": campaign["parity"][0],
    }[target]
    victim = campaign["root"] / name
    pristine = victim.read_bytes()
    rng = random.Random(SEED)
    positions = sorted(rng.sample(range(len(pristine)), 12))
    missed = []
    for pos in positions:
        flip_byte(victim, pos)
        report = scrub(campaign["manifest_path"])
        if report.clean:
            missed.append(pos)
        victim.write_bytes(pristine)  # restore for the next probe
    assert not missed, f"corruptions at {missed} of {name} went undetected"


def test_every_seeded_series_corruption_is_flagged(series_path, tmp_path):
    work = tmp_path / "series.rph2s"
    shutil.copyfile(series_path, work)
    pristine = work.read_bytes()
    rng = random.Random(SEED)
    missed = []
    for pos in sorted(rng.sample(range(len(pristine)), 12)):
        flip_byte(work, pos)
        if scrub(work).clean:
            missed.append(pos)
        work.write_bytes(pristine)
    assert not missed, f"series corruptions at {missed} went undetected"


def test_missing_shard_is_a_finding(campaign):
    os.remove(campaign["root"] / campaign["shards"][1])
    report = scrub(campaign["manifest_path"])
    assert not report.clean
    assert any(
        f.kind == "missing"
        and os.path.basename(f.file) == campaign["shards"][1]
        for f in report.findings
    )
