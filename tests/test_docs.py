"""Documentation health: the tools/check_docs.py contract, run in-process.

The CI ``docs`` job runs the same checker as a subprocess; these tests
keep it honest locally (the repo's own docs must be clean) and verify the
checker actually catches what it claims to catch.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestRepoDocsAreClean:
    def test_no_broken_links(self):
        assert checker.check_links(REPO_ROOT) == []

    def test_all_python_snippets_compile(self):
        assert checker.check_python_snippets(REPO_ROOT) == []

    def test_main_exits_zero(self, capsys):
        assert checker.main([str(REPO_ROOT)]) == 0
        assert "0 problem(s)" in capsys.readouterr().out

    def test_key_documents_exist_and_are_scanned(self):
        names = {p.name for p in checker.iter_markdown_files(REPO_ROOT)}
        assert {"README.md", "architecture.md", "container_format.md",
                "api.md"} <= names


class TestCheckerCatchesRot:
    def test_broken_relative_link_reported(self, tmp_path):
        (tmp_path / "doc.md").write_text("see [spec](missing/file.md)")
        errors = checker.check_links(tmp_path)
        assert len(errors) == 1 and "missing/file.md" in errors[0]

    def test_fragment_stripped_before_check(self, tmp_path):
        (tmp_path / "other.md").write_text("# other")
        (tmp_path / "doc.md").write_text("see [o](other.md#section)")
        assert checker.check_links(tmp_path) == []

    def test_external_links_skipped(self, tmp_path):
        (tmp_path / "doc.md").write_text(
            "[a](https://example.com/x) [b](mailto:x@y.z) [c](#anchor)"
        )
        assert checker.check_links(tmp_path) == []

    def test_bad_python_snippet_reported(self, tmp_path):
        (tmp_path / "doc.md").write_text(
            "```python\ndef broken(:\n```\n\n```python\nx = 1\n```\n"
        )
        errors = checker.check_python_snippets(tmp_path)
        assert len(errors) == 1 and "does not compile" in errors[0]

    def test_shell_fences_ignored(self, tmp_path):
        (tmp_path / "doc.md").write_text(
            "```sh\nthis --is 'not python'\n```\n"
        )
        assert checker.check_python_snippets(tmp_path) == []

    def test_main_exits_nonzero_on_problems(self, tmp_path, capsys):
        (tmp_path / "doc.md").write_text("[x](gone.md)")
        assert checker.main([str(tmp_path)]) == 1
        assert "broken link" in capsys.readouterr().err
