"""Unit tests for ``tools/bench_compare.py`` — the CI perf gate.

The regression gate is itself CI infrastructure, so its decision logic
(threshold direction, per-metric tolerance, tracked-vs-informational
metrics) and its two write paths (``--write-baseline``, ``--consolidate``)
are pinned here rather than trusted to manual runs.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_TOOLS = Path(__file__).resolve().parents[2] / "tools"
_spec = importlib.util.spec_from_file_location(
    "bench_compare", _TOOLS / "bench_compare.py"
)
bench_compare = importlib.util.module_from_spec(_spec)
sys.modules["bench_compare"] = bench_compare
_spec.loader.exec_module(bench_compare)


def _artifact(bench: str, **metrics) -> dict:
    return {
        "bench": bench,
        "metrics": {
            name: ({"value": spec} if not isinstance(spec, dict) else spec)
            for name, spec in metrics.items()
        },
    }


def _write(directory: Path, name: str, doc: dict) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc))
    return path


@pytest.fixture()
def dirs(tmp_path):
    current = tmp_path / "current"
    baseline = tmp_path / "baseline"
    current.mkdir()
    baseline.mkdir()
    return current, baseline


def _run(current, baseline, *extra) -> int:
    return bench_compare.main(
        ["--current", str(current), "--baseline", str(baseline), *extra]
    )


class TestGate:
    def test_within_tolerance_passes(self, dirs):
        current, baseline = dirs
        _write(current, "x", _artifact("x", speedup=9.0))
        _write(baseline, "x", _artifact("x", speedup=10.0))  # 10% worse < 20%
        assert _run(current, baseline) == 0

    def test_regression_beyond_threshold_fails(self, dirs, capsys):
        current, baseline = dirs
        _write(current, "x", _artifact("x", speedup=7.0))
        _write(baseline, "x", _artifact("x", speedup=10.0))  # 30% worse
        assert _run(current, baseline) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_direction_lower_is_better(self, dirs):
        current, baseline = dirs
        # Latency-style metric: going DOWN is an improvement, not a failure.
        spec = {"value": 100.0, "higher_is_better": False}
        _write(baseline, "x", _artifact("x", rss_mb=spec))
        _write(current, "x", _artifact("x", rss_mb=50.0))
        assert _run(current, baseline) == 0
        _write(current, "x", _artifact("x", rss_mb=130.0))  # 30% up: fails
        assert _run(current, baseline) == 1

    def test_per_metric_tolerance_overrides_threshold(self, dirs):
        current, baseline = dirs
        spec = {"value": 10.0, "tolerance": 0.5}
        _write(baseline, "x", _artifact("x", speedup=spec))
        _write(current, "x", _artifact("x", speedup=7.0))  # 30% < 50% tol
        assert _run(current, baseline) == 0

    def test_tighter_threshold_flag(self, dirs):
        current, baseline = dirs
        _write(baseline, "x", _artifact("x", speedup=10.0))
        _write(current, "x", _artifact("x", speedup=9.0))  # 10% worse
        assert _run(current, baseline, "--threshold", "0.05") == 1

    def test_missing_tracked_metric_fails(self, dirs, capsys):
        current, baseline = dirs
        _write(baseline, "x", _artifact("x", speedup=10.0, ratio=4.0))
        _write(current, "x", _artifact("x", speedup=10.0))
        assert _run(current, baseline) == 1
        assert "missing from current run" in capsys.readouterr().err

    def test_untracked_metric_is_informational(self, dirs, capsys):
        current, baseline = dirs
        _write(baseline, "x", _artifact("x", speedup=10.0))
        _write(current, "x", _artifact("x", speedup=10.0, new_metric=1.0))
        assert _run(current, baseline) == 0
        assert "untracked metric" in capsys.readouterr().out

    def test_no_baseline_is_informational_first_run(self, dirs, capsys):
        current, baseline = dirs
        _write(current, "x", _artifact("x", speedup=1.0))
        assert _run(current, baseline) == 0
        assert "no committed baseline" in capsys.readouterr().out

    def test_no_artifacts_at_all_fails(self, dirs):
        current, baseline = dirs
        assert _run(current, baseline) == 1

    def test_zero_baseline_never_divides(self, dirs):
        current, baseline = dirs
        _write(baseline, "x", _artifact("x", speedup=0.0))
        _write(current, "x", _artifact("x", speedup=123.0))
        assert _run(current, baseline) == 0

    def test_malformed_artifact_is_a_named_error(self, dirs):
        current, baseline = dirs
        (current / "BENCH_bad.json").write_text("{not json")
        with pytest.raises(SystemExit, match="cannot read"):
            _run(current, baseline)
        (current / "BENCH_bad.json").write_text('{"bench": "b"}')
        with pytest.raises(SystemExit, match="no 'metrics' mapping"):
            _run(current, baseline)


class TestWriteBaseline:
    def test_copies_artifacts_for_commit(self, dirs):
        current, baseline = dirs
        path = _write(current, "x", _artifact("x", speedup=3.0))
        assert _run(current, baseline, "--write-baseline") == 0
        target = baseline / path.name
        assert json.loads(target.read_text()) == json.loads(path.read_text())
        # The refreshed baseline immediately gates the same run green.
        assert _run(current, baseline) == 0

    def test_creates_missing_baseline_dir(self, tmp_path):
        current = tmp_path / "current"
        baseline = tmp_path / "nested" / "baselines"
        _write(current, "x", _artifact("x", speedup=3.0))
        assert _run(current, baseline, "--write-baseline") == 0
        assert (baseline / "BENCH_x.json").exists()


class TestConsolidate:
    def test_merges_all_artifacts(self, dirs):
        current, baseline = dirs
        _write(current, "a", _artifact("a", speedup=3.0))
        _write(current, "b", _artifact("b", ratio=4.0))
        out = current / "BENCH_perf.json"
        assert _run(current, baseline, "--consolidate", str(out)) == 0
        merged = json.loads(out.read_text())
        assert merged["format"] == "bench-perf"
        assert sorted(merged["benches"]) == ["a", "b"]
        assert merged["benches"]["a"]["metrics"]["speedup"]["value"] == 3.0

    def test_consolidated_file_excluded_from_rescan(self, dirs):
        current, baseline = dirs
        _write(current, "a", _artifact("a", speedup=3.0))
        out = current / "BENCH_perf.json"
        assert _run(current, baseline, "--consolidate", str(out)) == 0
        # A second run with BENCH_perf.json present must not diff it.
        assert _run(current, baseline, "--consolidate", str(out)) == 0

    def test_duplicate_bench_name_refused(self, dirs):
        current, baseline = dirs
        _write(current, "a1", _artifact("same", speedup=3.0))
        _write(current, "a2", _artifact("same", speedup=4.0))
        with pytest.raises(SystemExit, match="both claim bench"):
            _run(current, baseline, "--consolidate", str(current / "BENCH_perf.json"))


class TestRequireBaseline:
    def test_missing_baseline_fails_with_refresh_command(self, dirs, capsys):
        current, baseline = dirs
        _write(current, "x", _artifact("x", speedup=1.0))
        assert _run(current, baseline, "--require-baseline") == 1
        err = capsys.readouterr().err
        assert "MISSING" in err
        assert "--write-baseline" in err  # tells the dev the exact fix

    def test_present_baseline_still_gates_normally(self, dirs):
        current, baseline = dirs
        _write(baseline, "x", _artifact("x", speedup=10.0))
        _write(current, "x", _artifact("x", speedup=9.0))
        assert _run(current, baseline, "--require-baseline") == 0
        _write(current, "x", _artifact("x", speedup=5.0))  # 50% regression
        assert _run(current, baseline, "--require-baseline") == 1

    def test_write_baseline_then_require_passes(self, dirs):
        current, baseline = dirs
        _write(current, "x", _artifact("x", speedup=3.0))
        assert _run(current, baseline, "--write-baseline") == 0
        assert _run(current, baseline, "--require-baseline") == 0


class TestCheckConsistency:
    def test_byte_identical_passes(self, dirs, capsys):
        current, baseline = dirs
        path = _write(current, "x", _artifact("x", speedup=3.0))
        (baseline / path.name).write_bytes(path.read_bytes())
        assert _run(current, baseline, "--check-consistency") == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_differing_bytes_fail_with_refresh_command(self, dirs, capsys):
        current, baseline = dirs
        _write(current, "x", _artifact("x", speedup=3.0))
        _write(baseline, "x", _artifact("x", speedup=3.0000001))
        assert _run(current, baseline, "--check-consistency") == 1
        err = capsys.readouterr().err
        assert "differs from a fresh run" in err
        assert "--write-baseline" in err

    def test_missing_baseline_fails(self, dirs, capsys):
        current, baseline = dirs
        _write(current, "x", _artifact("x", speedup=3.0))
        assert _run(current, baseline, "--check-consistency") == 1
        assert "no committed baseline" in capsys.readouterr().err

    def test_malformed_current_artifact_is_a_named_error(self, dirs):
        current, baseline = dirs
        (current / "BENCH_bad.json").write_text("{not json")
        with pytest.raises(SystemExit, match="cannot read"):
            _run(current, baseline, "--check-consistency")

    def test_ignores_thresholds_entirely(self, dirs):
        """Even a wild regression passes if bytes match (that's the point:
        the check gates baseline freshness, not performance)."""
        current, baseline = dirs
        path = _write(current, "x", _artifact("x", speedup=0.001))
        (baseline / path.name).write_bytes(path.read_bytes())
        assert _run(current, baseline, "--check-consistency") == 0


class TestChangeRatio:
    def test_signs(self):
        cr = bench_compare.change_ratio
        assert cr(8.0, 10.0, True) == pytest.approx(0.2)    # hib down: worse
        assert cr(12.0, 10.0, True) == pytest.approx(-0.2)  # hib up: better
        assert cr(12.0, 10.0, False) == pytest.approx(0.2)  # lib up: worse
        assert cr(5.0, 10.0, False) == pytest.approx(-0.5)  # lib down: better
        assert cr(42.0, 0.0, True) == 0.0                   # zero base: no-op
