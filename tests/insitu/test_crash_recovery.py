"""Crash-injection matrix for the RPH2S recovery subsystem.

The durability guarantee — a killed in-situ writer loses at most the step
in flight — is proven here by damaging a finished series at every
structurally interesting offset class (``tools/crashsim.py`` derives the
offsets from the file's real layout) and asserting, for each variant:

* recovery salvages exactly the oracle's step set — every fully-sealed
  step, nothing else;
* each salvaged step is bit-exact: segment bytes identical to the
  original, decoded arrays identical to the pre-crash reference;
* both surfaces agree: ``SeriesReader.open(..., recover=True)`` and the
  CLI ``recover --commit`` rewrite;
* an intact series opened with ``recover=True`` takes the normal footer
  path (no rebuild), and no recovery path reads more than O(scan) bytes.

Quick mode: ``REPRO_CRASH_SCALE`` < 1 (the CI crash-recovery job uses
0.25) shrinks the campaign and the truncation-fraction grid;
``REPRO_CRASH_SEED`` reseeds the deterministic bitflip offsets.
"""

from __future__ import annotations

import importlib.util
import io
import os
import sys
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.amr.io import append_step, open_series, recover_series, write_series
from repro.compression.__main__ import main as cli_main
from repro.errors import CompressionError, FormatError, TruncatedSeriesError
from repro.insitu import SeriesReader, StreamingWriter, scan_segments
from tests.conftest import make_sphere_hierarchy

_TOOLS = Path(__file__).resolve().parents[2] / "tools"
_spec = importlib.util.spec_from_file_location("crashsim", _TOOLS / "crashsim.py")
crashsim = importlib.util.module_from_spec(_spec)
sys.modules["crashsim"] = crashsim  # dataclasses resolves cls.__module__
_spec.loader.exec_module(crashsim)

SCALE = float(os.environ.get("REPRO_CRASH_SCALE", "1.0"))
SEED = int(os.environ.get("REPRO_CRASH_SEED", str(crashsim.DEFAULT_SEED)))
FRACS = crashsim.DEFAULT_FRACS if SCALE >= 1.0 else (0.5,)
N_STEPS = 4 if SCALE >= 1.0 else 3

#: Offset classes that leave the series footer intact, so a normal open
#: still succeeds and the oracle is asserted against the scan directly.
_FOOTER_INTACT = ("payload-bitflip", "seal-bitflip", "adjacent-seal-bitflip")


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One finished, durable series + its pre-crash ground truth."""
    path = tmp_path_factory.mktemp("crash") / "run.rph2s"
    base = make_sphere_hierarchy(8)
    steps = [
        base.map_fields(lambda lev, name, d, i=i: d * (1.0 + 0.2 * i))
        for i in range(N_STEPS)
    ]
    write_series(path, steps, codec="sz-lr", error_bound=1e-3, durability="step")
    raw = path.read_bytes()
    with open_series(path) as reader:
        entries = {e.step: e for e in reader.step_entries}
        ref = reader.select()
    return SimpleNamespace(path=path, raw=raw, entries=entries, ref=ref)


def _points(campaign):
    return crashsim.injection_points(campaign.raw, payload_fracs=FRACS, seed=SEED)


def _assert_bit_exact(campaign, reader, expect_steps, ctx):
    """Every expected step must round-trip with its original bytes/values."""
    assert reader.steps == tuple(expect_steps), ctx
    for step in expect_steps:
        orig = campaign.entries[step]
        got = reader.entry(step)
        assert (got.offset, got.length) == (orig.offset, orig.length), ctx
        reader.verify_step(step)
    for (s, lev, field, p), want in campaign.ref.items():
        if s in expect_steps:
            assert np.array_equal(reader.read_patch(s, lev, field, p), want), (
                f"{ctx}: step {s} level {lev} patch {p} not bit-exact"
            )


class TestCrashMatrix:
    def test_every_offset_class_recovers_all_sealed_steps(self, campaign, tmp_path):
        points = _points(campaign)
        classes = {p.klass for p in points}
        # The matrix must exercise every documented offset class.
        assert classes == {
            "mid-payload", "mid-segment-footer", "mid-seal", "step-boundary",
            "append-resume", "mid-index", "mid-footer", "post-footer-garbage",
            "index-bitflip", "footer-bitflip", "payload-bitflip",
            "seal-bitflip", "adjacent-seal-bitflip",
        }
        for i, pt in enumerate(points):
            ctx = f"[point {i}: {pt.klass} — {pt.label}]"
            variant = crashsim.apply(campaign.raw, pt)

            # The scan is the oracle check: exact survivor set, bit-exact
            # segment bytes at the original offsets.
            report = scan_segments(io.BytesIO(variant))
            got_steps = tuple(e.step for e in report.entries)
            assert got_steps == pt.expect_steps, ctx
            for e in report.entries:
                want = campaign.entries[e.step]
                assert variant[e.offset : e.offset + e.length] == (
                    campaign.raw[want.offset : want.offset + want.length]
                ), f"{ctx}: step {e.step} segment bytes differ"

            if pt.klass in _FOOTER_INTACT:
                # Footer survives bit rot inside a segment/seal: a normal
                # open still works (stream crcs localize the damage), so
                # the recover surfaces are exercised by the other classes.
                SeriesReader(io.BytesIO(variant)).close()
                continue

            # Footer-destroying damage: normal open must refuse with the
            # recoverable error class, and both recovery surfaces must
            # serve exactly the sealed steps.
            with pytest.raises(TruncatedSeriesError):
                SeriesReader(io.BytesIO(variant))
            path = tmp_path / f"v{i}.rph2s"
            path.write_bytes(variant)
            if not pt.expect_steps:
                with pytest.raises(TruncatedSeriesError, match="nothing to recover"):
                    SeriesReader.open(path, recover=True)
                assert cli_main(["recover", str(path), "--commit"]) == 1
                assert path.read_bytes() == variant  # never half-committed
                continue
            with SeriesReader.open(path, recover=True) as reader:
                assert reader.recovered and reader.recovery is not None
                _assert_bit_exact(campaign, reader, pt.expect_steps, ctx)
            assert path.read_bytes() == variant  # recover=True is read-only

            assert cli_main(["recover", str(path), "--commit"]) == 0
            with open_series(path) as reader:  # normal open after commit
                assert not reader.recovered, ctx
                _assert_bit_exact(campaign, reader, pt.expect_steps, ctx)

    def test_clean_boundary_commit_is_byte_identical(self, campaign, tmp_path):
        """A crash exactly on the last sealed boundary commits back to a
        file byte-identical to the uninterrupted original — index builder
        and writer share one serialization."""
        last = campaign.entries[max(campaign.entries)]
        cut = last.offset + last.length + crashsim.SEAL_SIZE
        path = tmp_path / "boundary.rph2s"
        path.write_bytes(campaign.raw[:cut])
        assert cli_main(["recover", str(path), "--commit"]) == 0
        assert path.read_bytes() == campaign.raw

    def test_recovery_reads_o_scan_bytes(self, campaign):
        class CountingBytesIO(io.BytesIO):
            bytes_read = 0

            def read(self, size=-1):
                out = super().read(size)
                CountingBytesIO.bytes_read += len(out)
                return out

        # Worst interesting case: footer gone, every step sealed.
        variant = campaign.raw[: campaign.raw.rfind(b"RPH2SIDX") - 40]
        counting = CountingBytesIO(variant)
        report = scan_segments(counting)
        assert report.entries, "scan found nothing — bad test setup"
        # A bounded number of passes over the file, never O(steps x file).
        assert CountingBytesIO.bytes_read <= 4 * len(variant) + 4096


class TestRecoverSurfaces:
    def test_intact_series_takes_normal_path(self, campaign):
        with SeriesReader.open(campaign.path, recover=True) as reader:
            assert not reader.recovered and reader.recovery is None
            _assert_bit_exact(
                campaign, reader, tuple(sorted(campaign.entries)), "intact"
            )
        assert campaign.path.read_bytes() == campaign.raw

    def test_dry_run_reports_without_modifying(self, campaign, tmp_path):
        path = tmp_path / "dry.rph2s"
        variant = campaign.raw[:-10]
        path.write_bytes(variant)
        report = recover_series(path)
        assert not report.intact and "footer" in report.reason
        assert [e.step for e in report.entries] == sorted(campaign.entries)
        assert path.read_bytes() == variant
        assert cli_main(["recover", str(path)]) == 0  # dry run via CLI too
        assert path.read_bytes() == variant

    def test_commit_to_output_preserves_original(self, campaign, tmp_path):
        damaged = tmp_path / "damaged.rph2s"
        fixed = tmp_path / "fixed.rph2s"
        variant = campaign.raw[:-10]
        damaged.write_bytes(variant)
        assert cli_main(["recover", str(damaged), "--commit", "-o", str(fixed)]) == 0
        assert damaged.read_bytes() == variant
        with open_series(fixed) as reader:
            _assert_bit_exact(
                campaign, reader, tuple(sorted(campaign.entries)), "output"
            )

    def test_recovered_series_appendable_after_commit(self, campaign, tmp_path):
        path = tmp_path / "resume.rph2s"
        path.write_bytes(campaign.raw[:-10])
        recover_series(path, commit=True)
        entry = append_step(path, make_sphere_hierarchy(8), time=99.0)
        assert entry.step == max(campaign.entries) + 1
        with open_series(path) as reader:
            assert reader.times[-1] == 99.0

    def test_recover_report_describe_names_steps(self, campaign, tmp_path):
        path = tmp_path / "desc.rph2s"
        path.write_bytes(campaign.raw[:-10])
        text = recover_series(path).describe()
        assert "recovered" in text and "via seal" in text
        intact_text = recover_series(campaign.path).describe()
        assert "intact" in intact_text

    def test_non_series_refused(self, tmp_path):
        path = tmp_path / "alien.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 128)
        with pytest.raises(FormatError, match="not an RPH2S"):
            scan_segments(path)
        with pytest.raises(FormatError, match="not an RPH2S"):
            recover_series(path)

    def test_mmap_recovery(self, campaign, tmp_path):
        path = tmp_path / "mapped.rph2s"
        path.write_bytes(campaign.raw[:-10])
        with SeriesReader.open(path, mmap=True, recover=True) as reader:
            assert reader.mapped and reader.recovered
            _assert_bit_exact(
                campaign, reader, tuple(sorted(campaign.entries)), "mmap"
            )


class TestDurability:
    def test_truncation_error_names_recovery(self, campaign, tmp_path):
        path = tmp_path / "hint.rph2s"
        path.write_bytes(campaign.raw[:-10])
        with pytest.raises(TruncatedSeriesError, match="recover"):
            open_series(path)
        # Bad magic stays a distinct, non-recoverable failure class.
        try:
            SeriesReader(io.BytesIO(b"NOPE" + b"\x00" * 128))
        except TruncatedSeriesError:  # pragma: no cover - the wrong class
            pytest.fail("bad magic must not be classified as truncation")
        except FormatError as exc:
            assert "not an RPH2S series" in str(exc)

    def test_unknown_durability_rejected(self, tmp_path):
        with pytest.raises(CompressionError, match="durability"):
            StreamingWriter.create(tmp_path / "x.rph2s", "sz-lr", 1e-3,
                                   durability="paranoid")

    def test_fsync_failure_raises_under_step(self, tmp_path, monkeypatch):
        """A failing fsync must not silently void ``durability="step"``."""
        path = tmp_path / "sync.rph2s"
        writer = StreamingWriter.create(path, "sz-lr", 1e-3, durability="step")
        try:
            def boom(fd):
                raise OSError(5, "Input/output error")

            monkeypatch.setattr(os, "fsync", boom)
            with pytest.raises(CompressionError, match="fsync"):
                writer.append_step(make_sphere_hierarchy(8))
            assert writer.degraded
        finally:
            monkeypatch.undo()
            writer.abort()

    def test_fsync_failure_warns_under_close(self, tmp_path, monkeypatch):
        """Under ``durability="close"`` a failing fsync degrades loudly —
        warn, flag the writer, keep the (flushed) file readable."""
        path = tmp_path / "warned.rph2s"
        writer = StreamingWriter.create(path, "sz-lr", 1e-3, durability="close")
        writer.append_step(make_sphere_hierarchy(8))

        def boom(fd):
            raise OSError(5, "Input/output error")

        monkeypatch.setattr(os, "fsync", boom)
        with pytest.warns(RuntimeWarning, match="fsync"):
            writer.close()
        monkeypatch.undo()
        assert writer.degraded
        with open_series(path) as reader:
            assert reader.n_steps == 1

    def test_append_to_truncates_stale_index_eagerly(self, campaign, tmp_path):
        """``append_to`` must cut the old index/footer the moment it takes
        over the file — a crash before the first new step must leave the
        append-resume shape (all seals intact, zero stale bytes), never a
        stale index whose entries lie about the file's contents."""
        path = tmp_path / "resume.rph2s"
        path.write_bytes(campaign.raw)
        with open_series(path) as reader:
            resume_pos = reader._index_offset
        writer = StreamingWriter.append_to(path)
        try:
            assert path.stat().st_size == resume_pos
            assert path.read_bytes() == campaign.raw[:resume_pos]
        finally:
            writer.abort()
        # The aborted shape is exactly crashsim's append-resume class:
        # every original step salvageable, bit-exactly.
        report = scan_segments(path)
        assert [e.step for e in report.entries] == sorted(campaign.entries)
        recover_series(path, commit=True)
        with open_series(path) as reader:
            _assert_bit_exact(
                campaign, reader, tuple(sorted(campaign.entries)), "resume"
            )

    @pytest.mark.parametrize("durability,min_syncs", [("step", 4), ("none", 0)])
    def test_fsync_placement(self, tmp_path, monkeypatch, durability, min_syncs):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd) or real_fsync(fd))
        path = tmp_path / f"{durability}.rph2s"
        with StreamingWriter.create(path, "sz-lr", 1e-3,
                                    durability=durability) as writer:
            writer.append_step(make_sphere_hierarchy(8))
            writer.append_step(make_sphere_hierarchy(8))
        if min_syncs:
            # One per sealed step plus the two-phase index/footer commit.
            assert len(calls) >= min_syncs
        else:
            assert not calls
        with open_series(path) as reader:
            assert reader.n_steps == 2
