"""Sharded multi-writer campaigns: RPHM manifests, routing, recovery.

The contract under test: a campaign fanned across N shard files is
indistinguishable, to a reader, from the same steps written by one
:class:`StreamingWriter` — same values, same selective-read semantics —
and killing one shard's writer mid-step loses at most that shard's
in-flight step while every other shard stays bit-exact.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.amr.io import (
    open_series,
    recover_series,
    write_series,
    write_sharded_series,
)
from repro.compression.amr_codec import decompress_selection
from repro.errors import CompressionError, FormatError, TruncatedSeriesError
from repro.insitu import (
    MANIFEST_MAGIC,
    SeriesReader,
    ShardedRecoveryReport,
    ShardedSeriesReader,
    ShardedSeriesWriter,
    StreamingWriter,
    recover_sharded,
)
from repro.insitu.sharded import (
    _SERIES_META_KEYS,
    pack_manifest,
    parse_manifest,
    shard_names,
)
from tests.conftest import make_sphere_hierarchy

_TOOLS = Path(__file__).resolve().parents[2] / "tools"
_spec = importlib.util.spec_from_file_location("crashsim_sharded", _TOOLS / "crashsim.py")
crashsim = importlib.util.module_from_spec(_spec)
sys.modules["crashsim_sharded"] = crashsim
_spec.loader.exec_module(crashsim)

N_STEPS = 6
N_SHARDS = 3


def _steps(n=N_STEPS):
    base = make_sphere_hierarchy(8)
    return [
        base.map_fields(lambda lev, name, d, i=i: d * (1.0 + 0.25 * i))
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """A finished 3-shard campaign plus its single-writer reference."""
    root = tmp_path_factory.mktemp("sharded")
    steps = _steps()
    manifest = root / "camp.rphm"
    write_sharded_series(manifest, steps, n_shards=N_SHARDS, parallel="serial",
                         durability="step")
    single = root / "single.rph2s"
    write_series(single, steps, durability="step")
    with open_series(single) as reader:
        ref = reader.select()
    return manifest, single, ref


class TestShardedWrite:
    def test_union_is_value_identical_to_single_writer(self, campaign):
        manifest, _, ref = campaign
        with open_series(manifest) as reader:
            assert reader.is_sharded and reader.n_shards == N_SHARDS
            assert reader.steps == tuple(range(N_STEPS))
            got = reader.select()
        assert set(got) == set(ref)
        for key, want in ref.items():
            assert np.array_equal(got[key], want), key

    def test_round_robin_routing_and_o_selection_reads(self, campaign):
        manifest, _, _ = campaign
        with SeriesReader.open(manifest) as reader:
            # Arrival order fans out round-robin: step s lives on shard s%N.
            for s in range(N_STEPS):
                assert reader.shard_of(s).endswith(
                    f".shard{s % N_SHARDS:03d}.rph2s"
                )
            only = reader.select(steps=4)
            assert {k[0] for k in only} == {4}
            reader.verify_step(4)
            assert reader.entry(4).step == 4

    def test_decompress_selection_routes_through_manifest(self, campaign):
        manifest, _, ref = campaign
        got = decompress_selection(str(manifest), steps=[1, 5])
        assert {k[0] for k in got} == {1, 5}
        for key, arr in got.items():
            assert np.array_equal(arr, ref[key])

    def test_explicit_shard_pinning(self, tmp_path):
        manifest = tmp_path / "pinned.rphm"
        steps = _steps(4)
        with ShardedSeriesWriter.create(manifest, "sz-lr", 1e-3, n_shards=2,
                                        parallel="serial") as writer:
            for i, h in enumerate(steps):
                writer.append_step(h, shard=i // 2)  # ranks 0,0,1,1
        with open_series(manifest) as reader:
            assert reader.shard_of(0) == reader.shard_of(1)
            assert reader.shard_of(2) == reader.shard_of(3)
            assert reader.shard_of(0) != reader.shard_of(2)

    def test_step_numbers_strictly_increasing_campaign_wide(self, tmp_path):
        with ShardedSeriesWriter.create(tmp_path / "x.rphm", "sz-lr", 1e-3,
                                        n_shards=2, parallel="serial") as writer:
            writer.append_step(make_sphere_hierarchy(8), step=3)
            with pytest.raises(CompressionError, match="strictly increasing"):
                writer.append_step(make_sphere_hierarchy(8), step=3)
            writer.append_step(make_sphere_hierarchy(8), step=7)

    def test_threaded_lanes_match_serial(self, tmp_path):
        steps = _steps(4)
        a = tmp_path / "threaded.rphm"
        b = tmp_path / "serial.rphm"
        write_sharded_series(a, steps, n_shards=2, parallel="thread")
        write_sharded_series(b, steps, n_shards=2, parallel="serial")
        with open_series(a) as ra, open_series(b) as rb:
            ga, gb = ra.select(), rb.select()
        assert set(ga) == set(gb)
        for key in ga:
            assert np.array_equal(ga[key], gb[key])

    def test_append_to_refuses_manifests(self, campaign):
        manifest, _, _ = campaign
        with pytest.raises(CompressionError, match="sharded"):
            StreamingWriter.append_to(manifest)


class TestManifest:
    def test_shard_files_named_from_manifest_stem(self, tmp_path):
        names = shard_names(str(tmp_path / "runX.rphm"), 2)
        assert [Path(n).name for n in names] == [
            "runX.shard000.rph2s", "runX.shard001.rph2s",
        ]

    def test_manifest_records_per_shard_durability(self, tmp_path):
        manifest = tmp_path / "mixed.rphm"
        write_sharded_series(manifest, _steps(4), n_shards=2, parallel="serial",
                             durability=("step", "none"))
        man = parse_manifest(manifest.read_bytes())
        assert man["final"] is True
        assert [r["durability"] for r in man["shards"]] == ["step", "none"]
        assert [r["steps"] for r in man["shards"]] == [[0, 2], [1, 3]]

    def test_crc_catches_manifest_bit_rot(self, campaign, tmp_path):
        manifest, _, _ = campaign
        raw = bytearray(manifest.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        bad = tmp_path / "rotten.rphm"
        bad.write_bytes(bytes(raw))
        with pytest.raises(TruncatedSeriesError, match="checksum"):
            parse_manifest(bytes(raw))

    def test_alien_magic_is_not_recoverable_class(self):
        with pytest.raises(FormatError) as exc:
            parse_manifest(b"NOPE" + b"\x00" * 64)
        assert not isinstance(exc.value, TruncatedSeriesError)

    def test_nonfinal_manifest_refused_without_recover(self, tmp_path):
        manifest = tmp_path / "killed.rphm"
        writer = ShardedSeriesWriter.create(manifest, "sz-lr", 1e-3,
                                            n_shards=2, parallel="serial")
        writer.append_step(make_sphere_hierarchy(8))
        writer.abort()
        assert manifest.read_bytes()[:4] == MANIFEST_MAGIC
        with pytest.raises(TruncatedSeriesError, match="final"):
            open_series(manifest)


class TestKilledWriter:
    def test_crashsim_matrix_union_oracle(self, campaign, tmp_path):
        """Every deterministic kill: normal open refuses, recovery serves
        exactly the union oracle, survivors bit-exact, commit repairs."""
        manifest, _, ref = campaign
        points = crashsim.sharded_injection_points(manifest)
        assert len(points) == 2 + N_SHARDS * len(crashsim.DEFAULT_FRACS)
        assert {p.manifest for p in points} == {"nonfinal", "torn"}
        for i, pt in enumerate(points):
            ctx = f"[sharded point {i}: {pt.label}]"
            vman = crashsim.apply_sharded(manifest, pt, tmp_path / f"v{i}")
            with pytest.raises(TruncatedSeriesError):
                SeriesReader.open(vman)
            with SeriesReader.open(vman, recover=True) as reader:
                assert reader.recovered, ctx
                assert reader.steps == pt.expect_steps, ctx
                got = reader.select()
            for key, want in ref.items():
                if key[0] in pt.expect_steps:
                    assert np.array_equal(got[key], want), (ctx, key)

            report = recover_sharded(vman, commit=True)
            assert isinstance(report, ShardedRecoveryReport)
            assert report.steps == pt.expect_steps, ctx
            with open_series(vman) as reader:  # normal open after commit
                assert not reader.recovered, ctx
                assert reader.steps == pt.expect_steps, ctx

    def test_mixed_durability_per_shard_survivor_oracles(self, tmp_path):
        """Shard A at durability="step", shard B at "none"; kill B mid-step.
        The per-shard oracles differ: A keeps everything it ever sealed, B
        loses exactly the in-flight step."""
        manifest = tmp_path / "mixed.rphm"
        write_sharded_series(manifest, _steps(6), n_shards=2, parallel="serial",
                             durability=("step", "none"))
        names = [Path(n).name for n in shard_names(str(manifest), 2)]
        points = crashsim.sharded_injection_points(manifest)
        victims = [p for p in points if p.victim == names[1]]
        assert victims, "no kill point for the durability='none' shard"
        pt = victims[0]
        vman = crashsim.apply_sharded(manifest, pt, tmp_path / "killed")

        report = recover_sharded(vman, commit=True)
        per_shard = {
            Path(name).name: tuple(e.step for e in rep.entries)
            for name, rep in report.shard_reports.items()
        }
        assert per_shard[names[0]] == (0, 2, 4)  # "step" shard: all sealed
        assert per_shard[names[1]] == (1, 3)     # "none" victim: lost step 5
        assert not report.dropped
        # Durability modes survive the manifest rebuild.
        man = parse_manifest(vman.read_bytes())
        assert [r["durability"] for r in man["shards"]] == ["step", "none"]
        assert "recovered" in report.describe()

    def test_shard_lost_entirely_is_dropped_not_fatal(self, campaign, tmp_path):
        manifest, _, _ = campaign
        pt = crashsim.sharded_injection_points(manifest)[0]
        vdir = tmp_path / "gone"
        vman = crashsim.apply_sharded(manifest, pt, vdir)
        victim = shard_names(str(vman), N_SHARDS)[1]
        Path(victim).write_bytes(b"NOPE")  # shard overwritten by alien bytes
        with SeriesReader.open(vman, recover=True) as reader:
            assert reader.recovery is not None
            assert [Path(n).name for n, _ in reader.recovery.dropped] == [
                Path(victim).name
            ]
            # Union drops shard 1's steps (1, 4); everything else survives.
            assert reader.steps == (0, 2, 3, 5)

    def test_recover_series_routes_manifests(self, campaign, tmp_path):
        manifest, _, _ = campaign
        pt = crashsim.sharded_injection_points(manifest)[0]
        vman = crashsim.apply_sharded(manifest, pt, tmp_path / "route")
        report = recover_series(vman)  # dry run: nothing modified
        assert isinstance(report, ShardedRecoveryReport) and not report.intact
        with pytest.raises(TruncatedSeriesError):
            open_series(vman)
        with pytest.raises(FormatError, match="output"):
            recover_series(vman, output=tmp_path / "elsewhere.rphm")

    def test_intact_campaign_reports_intact(self, campaign):
        manifest, _, _ = campaign
        report = recover_sharded(manifest)
        assert report.intact and report.steps == tuple(range(N_STEPS))
        assert "intact" in report.describe()


class TestShardedReaderApi:
    def test_meta_and_stats_aggregate(self, campaign):
        manifest, single, _ = campaign
        with open_series(manifest) as sh, open_series(single) as mono:
            assert sh.codec == mono.codec == "sz-lr"
            assert sh.error_bound == mono.error_bound
            assert sh.fields == mono.fields
            assert sh.times == mono.times
            assert sh.original_bytes == mono.original_bytes
            assert sh.meta()["codec"] == "sz-lr"
            assert len(sh.shards) == N_SHARDS

    def test_open_step_and_read_patch_route(self, campaign):
        manifest, _, ref = campaign
        with open_series(manifest) as reader:
            with reader.open_step(2) as step_reader:
                assert step_reader.n_levels > 0 and step_reader.entries
            key = next(k for k in ref if k[0] == 3)
            got = reader.read_patch(*key)
            assert np.array_equal(got, ref[key])

    def test_select_partial_serves_around_dead_shard(self, campaign):
        """Degraded read: one shard's GETs all fail, select_partial still
        serves every surviving shard's patches bit-exactly and reports
        exactly the victim's steps as missing."""
        from repro.faults import FaultPlan
        from repro.storage import LocalFileBackend, RangedBackend

        manifest, _, ref = campaign
        plan = FaultPlan()
        backend = RangedBackend(
            LocalFileBackend(), readahead=1 << 12, max_retries=0, fault=plan,
        )
        with ShardedSeriesReader.open(manifest, backend=backend) as reader:
            # Healthy campaign: partial is exactly select, nothing missing.
            got, missing = reader.select_partial()
            assert missing == []
            assert set(got) == set(ref)
            for key, want in ref.items():
                assert np.array_equal(got[key], want), key

            victim = reader.shard_of(0)
            victim_steps = {
                e.step for e in reader.step_entries
                if reader.shard_of(e.step) == victim
            }
            plan.always(lambda name, off, length: name == victim,
                        kind="storage")
            got, missing = reader.select_partial()
            assert {m["step"] for m in missing} == victim_steps
            for m in missing:
                assert m["file"] == victim
                assert m["error"] == "StorageError"
                assert "injected storage fault" in m["detail"]
            served_steps = {k[0] for k in got}
            assert served_steps == set(range(N_STEPS)) - victim_steps
            for key, arr in got.items():
                assert np.array_equal(arr, ref[key]), key

            # The outage ends: the same call is complete again.
            plan.clear()
            again, missing2 = reader.select_partial()
            assert missing2 == [] and set(again) == set(ref)

    def test_select_partial_respects_selectors(self, campaign):
        manifest, _, ref = campaign
        with open_series(manifest) as reader:
            got, missing = reader.select_partial(steps=[1, 4], levels=0)
            assert missing == []
            assert got, "selection came back empty"
            for key, arr in got.items():
                assert key[0] in (1, 4) and key[1] == 0
                assert np.array_equal(arr, ref[key]), key

    def test_duplicate_step_across_shards_refused(self, tmp_path):
        """Two shards both claiming a step is corruption, not a tie to
        break silently."""
        manifest = tmp_path / "dup.rphm"
        write_sharded_series(manifest, _steps(2), n_shards=2, parallel="serial")
        names = shard_names(str(manifest), 2)
        # Clone shard 0 over shard 1: both now hold step 0.
        Path(names[1]).write_bytes(Path(names[0]).read_bytes())
        man = parse_manifest(manifest.read_bytes())
        meta = {k: man[k] for k in _SERIES_META_KEYS}
        manifest.write_bytes(pack_manifest(meta, man["shards"], final=True))
        with pytest.raises(FormatError, match="shard"):
            open_series(manifest)
