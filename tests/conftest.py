"""Shared fixtures: small deterministic fields and hierarchies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import AMRHierarchy, AMRLevel, Box, BoxArray, Patch


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test data."""
    return np.random.default_rng(1234)


@pytest.fixture
def smooth_field() -> np.ndarray:
    """A 24^3 smooth trigonometric field."""
    ax = np.linspace(0.0, 1.0, 24)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    return np.sin(5 * x) * np.cos(4 * y) * np.sin(3 * z) + 0.5 * x


@pytest.fixture
def rough_field(rng: np.random.Generator, smooth_field: np.ndarray) -> np.ndarray:
    """Smooth field plus strong noise (Nyx-like irregularity)."""
    return smooth_field + 0.3 * rng.normal(size=smooth_field.shape)


def make_sphere_hierarchy(n: int = 16, radius: float = 0.55) -> AMRHierarchy:
    """Two-level hierarchy holding the distance field of a sphere.

    Level 1 refines the +x half of the domain; the field is the distance to
    the domain center, so the ``radius`` iso-surface is a sphere crossing
    the level interface.
    """

    def dist_cells(box: Box, dx: float) -> np.ndarray:
        axes = [(np.arange(box.lo[d], box.hi[d] + 1) + 0.5) * dx for d in range(3)]
        xx, yy, zz = np.meshgrid(*axes, indexing="ij")
        return np.sqrt((xx - 1.0) ** 2 + (yy - 1.0) ** 2 + (zz - 1.0) ** 2)

    dom = Box.from_shape((n, n, n))
    dx0 = 2.0 / n
    level0 = AMRLevel(
        0, BoxArray([dom]), (dx0,) * 3, {"f": [Patch(dom, dist_cells(dom, dx0))]}
    )
    fine_boxes = BoxArray([Box((n, 0, 0), (2 * n - 1, 2 * n - 1, 2 * n - 1))])
    level1 = AMRLevel(
        1,
        fine_boxes,
        (dx0 / 2,) * 3,
        {"f": [Patch(b, dist_cells(b, dx0 / 2)) for b in fine_boxes]},
    )
    return AMRHierarchy(dom, [level0, level1], 2)


@pytest.fixture
def sphere_hierarchy() -> AMRHierarchy:
    """Two-level sphere-distance hierarchy (see make_sphere_hierarchy)."""
    return make_sphere_hierarchy()


@pytest.fixture
def multi_field_hierarchy(rng: np.random.Generator) -> AMRHierarchy:
    """Two-level, two-field, multi-patch hierarchy with random data."""
    dom = Box.from_shape((12, 12, 12))
    level0 = AMRLevel(0, BoxArray([dom]), (1.0,) * 3)
    for name in ("a", "b"):
        level0.add_field(name, [Patch(dom, rng.normal(size=dom.shape))])
    fine = BoxArray([Box((0, 0, 0), (11, 11, 11)), Box((12, 12, 12), (23, 23, 23))])
    level1 = AMRLevel(1, fine, (0.5,) * 3)
    for name in ("a", "b"):
        level1.add_field(name, [Patch(b, rng.normal(size=b.shape)) for b in fine])
    return AMRHierarchy(dom, [level0, level1], 2)
