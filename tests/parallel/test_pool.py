"""Tests for the ordered parallel map."""

from __future__ import annotations

import os

import pytest

from repro.errors import ReproError
from repro.parallel import EXECUTION_MODES, parallel_map


def square(x: int) -> int:
    return x * x


class TestModes:
    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_order_preserved(self, mode):
        out = parallel_map(square, range(20), mode=mode, workers=3)
        assert out == [x * x for x in range(20)]

    def test_process_mode(self):
        out = parallel_map(square, range(8), mode="process", workers=2)
        assert out == [x * x for x in range(8)]

    def test_empty_items(self):
        assert parallel_map(square, [], mode="thread") == []

    def test_single_item_short_circuits(self):
        assert parallel_map(square, [3], mode="process") == [9]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            parallel_map(square, [1], mode="gpu")

    def test_bad_workers_rejected(self):
        with pytest.raises(ReproError):
            parallel_map(square, [1, 2], mode="thread", workers=0)

    def test_exception_propagates(self):
        def boom(x):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            parallel_map(boom, [1, 2], mode="thread", workers=2)
