"""Tests for the ordered parallel map and the persistent worker pool."""

from __future__ import annotations

import os

import pytest

from repro.errors import ReproError
from repro.parallel import EXECUTION_MODES, WorkerPool, parallel_map


def square(x: int) -> int:
    return x * x


class TestModes:
    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_order_preserved(self, mode):
        out = parallel_map(square, range(20), mode=mode, workers=3)
        assert out == [x * x for x in range(20)]

    def test_process_mode(self):
        out = parallel_map(square, range(8), mode="process", workers=2)
        assert out == [x * x for x in range(8)]

    def test_empty_items(self):
        assert parallel_map(square, [], mode="thread") == []

    def test_single_item_short_circuits(self):
        assert parallel_map(square, [3], mode="process") == [9]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            parallel_map(square, [1], mode="gpu")

    def test_bad_workers_rejected(self):
        with pytest.raises(ReproError):
            parallel_map(square, [1, 2], mode="thread", workers=0)

    def test_exception_propagates(self):
        def boom(x):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            parallel_map(boom, [1, 2], mode="thread", workers=2)


def boom(x):
    raise ValueError("boom")


class TestWorkerPool:
    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_map_order_preserved(self, mode):
        with WorkerPool(mode, workers=3) as pool:
            assert pool.map(square, range(20)) == [x * x for x in range(20)]

    def test_process_pool(self):
        with WorkerPool("process", workers=2) as pool:
            assert pool.map(square, range(8)) == [x * x for x in range(8)]

    def test_reused_across_parallel_map_calls(self):
        """The executor survives across maps — the churn fix."""
        with WorkerPool("thread", workers=2) as pool:
            for _ in range(3):
                out = parallel_map(square, range(10), pool=pool)
                assert out == [x * x for x in range(10)]
            # pool still open after repeated use
            assert not pool.closed

    def test_parallel_map_pool_overrides_mode(self):
        """With pool=, the historical mode/workers args are ignored."""
        with WorkerPool("serial") as pool:
            out = parallel_map(square, range(5), mode="process", workers=64, pool=pool)
            assert out == [x * x for x in range(5)]

    def test_submit_serial_runs_inline(self):
        with WorkerPool("serial") as pool:
            fut = pool.submit(square, 7)
            assert fut.result() == 49
            fut = pool.submit(boom, 1)
            with pytest.raises(ValueError):
                fut.result()

    def test_submit_threaded(self):
        with WorkerPool("thread", workers=2) as pool:
            futs = [pool.submit(square, i) for i in range(6)]
            assert [f.result() for f in futs] == [i * i for i in range(6)]

    def test_closed_pool_rejected(self):
        pool = WorkerPool("thread", workers=1)
        pool.close()
        assert pool.closed
        with pytest.raises(ReproError):
            pool.map(square, [1])
        with pytest.raises(ReproError):
            pool.submit(square, 1)
        pool.close()  # idempotent

    def test_bad_args_rejected(self):
        with pytest.raises(ReproError):
            WorkerPool("gpu")
        with pytest.raises(ReproError):
            WorkerPool("thread", chunksize=0)

    def test_workers_resolution(self):
        with WorkerPool("thread", workers=None) as pool:
            assert pool.workers == max(1, os.cpu_count() or 1)
        with WorkerPool("serial", workers=7) as pool:
            assert pool.workers == 1

    def test_exception_propagates_from_map(self):
        with WorkerPool("thread", workers=2) as pool:
            with pytest.raises(ValueError):
                pool.map(boom, [1, 2])
            # the pool survives a failed map
            assert pool.map(square, [3]) == [9]
