"""Tests for the ordered parallel map and the persistent worker pool."""

from __future__ import annotations

import os

import pytest

from repro.errors import ReproError
from repro.parallel import EXECUTION_MODES, WorkerPool, parallel_map


def square(x: int) -> int:
    return x * x


class TestModes:
    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_order_preserved(self, mode):
        out = parallel_map(square, range(20), mode=mode, workers=3)
        assert out == [x * x for x in range(20)]

    def test_process_mode(self):
        out = parallel_map(square, range(8), mode="process", workers=2)
        assert out == [x * x for x in range(8)]

    def test_empty_items(self):
        assert parallel_map(square, [], mode="thread") == []

    def test_single_item_short_circuits(self):
        assert parallel_map(square, [3], mode="process") == [9]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            parallel_map(square, [1], mode="gpu")

    def test_bad_workers_rejected(self):
        with pytest.raises(ReproError):
            parallel_map(square, [1, 2], mode="thread", workers=0)

    def test_exception_propagates(self):
        def boom(x):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            parallel_map(boom, [1, 2], mode="thread", workers=2)


def boom(x):
    raise ValueError("boom")


class TestWorkerPool:
    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_map_order_preserved(self, mode):
        with WorkerPool(mode, workers=3) as pool:
            assert pool.map(square, range(20)) == [x * x for x in range(20)]

    def test_process_pool(self):
        with WorkerPool("process", workers=2) as pool:
            assert pool.map(square, range(8)) == [x * x for x in range(8)]

    def test_reused_across_parallel_map_calls(self):
        """The executor survives across maps — the churn fix."""
        with WorkerPool("thread", workers=2) as pool:
            for _ in range(3):
                out = parallel_map(square, range(10), pool=pool)
                assert out == [x * x for x in range(10)]
            # pool still open after repeated use
            assert not pool.closed

    def test_parallel_map_pool_overrides_mode(self):
        """With pool=, the historical mode/workers args are ignored."""
        with WorkerPool("serial") as pool:
            out = parallel_map(square, range(5), mode="process", workers=64, pool=pool)
            assert out == [x * x for x in range(5)]

    def test_submit_serial_runs_inline(self):
        with WorkerPool("serial") as pool:
            fut = pool.submit(square, 7)
            assert fut.result() == 49
            fut = pool.submit(boom, 1)
            with pytest.raises(ValueError):
                fut.result()

    def test_submit_threaded(self):
        with WorkerPool("thread", workers=2) as pool:
            futs = [pool.submit(square, i) for i in range(6)]
            assert [f.result() for f in futs] == [i * i for i in range(6)]

    def test_closed_pool_rejected(self):
        pool = WorkerPool("thread", workers=1)
        pool.close()
        assert pool.closed
        with pytest.raises(ReproError):
            pool.map(square, [1])
        with pytest.raises(ReproError):
            pool.submit(square, 1)
        pool.close()  # idempotent

    def test_bad_args_rejected(self):
        with pytest.raises(ReproError):
            WorkerPool("gpu")
        with pytest.raises(ReproError):
            WorkerPool("thread", chunksize=0)

    def test_workers_resolution(self):
        with WorkerPool("thread", workers=None) as pool:
            assert pool.workers == max(1, os.cpu_count() or 1)
        with WorkerPool("serial", workers=7) as pool:
            assert pool.workers == 1

    def test_exception_propagates_from_map(self):
        with WorkerPool("thread", workers=2) as pool:
            with pytest.raises(ValueError):
                pool.map(boom, [1, 2])
            # the pool survives a failed map
            assert pool.map(square, [3]) == [9]


class TestShutdownSemantics:
    def test_close_cancels_queued_futures(self):
        """Once ``closed`` reports True no queued task may still start:
        close() must pass cancel_futures so tasks submitted behind a
        running one are cancelled, not drained."""
        import threading
        from concurrent.futures import CancelledError

        release = threading.Event()
        started = threading.Event()
        ran = []

        def blocker():
            started.set()
            release.wait(timeout=30)

        def queued():
            ran.append(True)

        pool = WorkerPool("thread", workers=1)
        first = pool.submit(blocker)
        assert started.wait(timeout=30)
        second = pool.submit(queued)  # stuck behind the blocker

        closer = threading.Thread(target=pool.close)
        closer.start()
        release.set()  # let the running task finish; close() then returns
        closer.join(timeout=30)
        assert pool.closed and first.result(timeout=30) is None
        assert second.cancelled()
        with pytest.raises(CancelledError):
            second.result(timeout=1)
        assert not ran, "a queued task ran after the pool reported closed"

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="fork-only semantics")
    def test_process_pool_refuses_use_after_fork(self):
        """A forked child inherits the executor object but not its worker
        processes; using it would deadlock. The pool must refuse loudly."""
        pool = WorkerPool("process", workers=1)
        try:
            assert pool.map(square, [3, 4]) == [9, 16]  # parent: fine
            pid = os.fork()
            if pid == 0:  # child
                code = 1
                try:
                    pool.submit(square, 1)
                except ReproError as exc:
                    code = 0 if "fork" in str(exc) else 2
                except BaseException:
                    code = 3
                finally:
                    os._exit(code)
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
            # The parent's handle keeps working after the fork.
            assert pool.map(square, [5]) == [25]
        finally:
            pool.close()

    def test_thread_pools_survive_fork_check(self):
        """The fork guard is process-mode only; thread pools recreate their
        workers lazily and stay usable by contract in the same process."""
        with WorkerPool("thread", workers=1) as pool:
            assert pool.map(square, [2]) == [4]
