"""Tests for domain chunking."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.parallel import aligned_chunk_boxes, chunk_boxes


class TestChunkBoxes:
    def test_partition(self):
        boxes = chunk_boxes((10, 4, 4), 3, axis=0)
        assert sum(b.size for b in boxes) == 160
        starts = [b.lo[0] for b in boxes]
        assert starts == sorted(starts)

    def test_more_chunks_than_cells(self):
        boxes = chunk_boxes((2, 3), 10, axis=0)
        assert len(boxes) == 2

    def test_single_chunk(self):
        boxes = chunk_boxes((8, 8), 1)
        assert len(boxes) == 1
        assert boxes[0].shape == (8, 8)

    def test_bad_axis_rejected(self):
        with pytest.raises(ReproError):
            chunk_boxes((4, 4), 2, axis=5)

    def test_bad_count_rejected(self):
        with pytest.raises(ReproError):
            chunk_boxes((4, 4), 0)


class TestAlignedChunks:
    def test_cut_planes_aligned(self):
        boxes = aligned_chunk_boxes((25, 4), 3, block_size=6, axis=0)
        assert sum(b.size for b in boxes) == 100
        for b in boxes[:-1]:
            assert (b.hi[0] + 1) % 6 == 0

    def test_block_one_same_as_plain(self):
        a = aligned_chunk_boxes((10, 4), 3, block_size=1)
        b = chunk_boxes((10, 4), 3)
        assert a == b

    def test_tiny_axis_collapses(self):
        boxes = aligned_chunk_boxes((5, 4), 4, block_size=6, axis=0)
        assert sum(b.size for b in boxes) == 20

    def test_bad_block_rejected(self):
        with pytest.raises(ReproError):
            aligned_chunk_boxes((8, 8), 2, block_size=0)
