"""Tests for parallel chunk/patch compression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import ChunkedStream, compress_chunks, compress_patches, decompress_chunks


class TestChunkedCompression:
    @pytest.mark.parametrize("parallel", ["serial", "thread"])
    def test_roundtrip_bound(self, smooth_field, parallel):
        stream = compress_chunks(
            smooth_field, "sz-lr", 1e-3, mode="abs", n_chunks=3, parallel=parallel
        )
        out = decompress_chunks(stream, parallel=parallel)
        assert np.abs(out - smooth_field).max() <= 1e-3 * (1 + 1e-12)

    def test_rel_mode_resolved_globally(self, smooth_field):
        # Each chunk gets the same absolute bound as full-array compression.
        stream = compress_chunks(smooth_field, "sz-lr", 1e-3, mode="rel", n_chunks=4)
        out = decompress_chunks(stream)
        eb_abs = 1e-3 * (smooth_field.max() - smooth_field.min())
        assert np.abs(out - smooth_field).max() <= eb_abs * (1 + 1e-12)

    def test_single_chunk_equivalent(self, smooth_field):
        stream = compress_chunks(smooth_field, "sz-interp", 1e-3, n_chunks=1)
        assert len(stream.blobs) == 1
        out = decompress_chunks(stream)
        assert np.abs(out - smooth_field).max() <= 1e-3 * (1 + 1e-12)

    def test_chunks_block_aligned(self, smooth_field):
        stream = compress_chunks(smooth_field, "sz-lr", 1e-3, n_chunks=3)
        for box in stream.boxes[:-1]:
            assert (box.hi[0] + 1) % 6 == 0

    def test_serialization_roundtrip(self, smooth_field):
        stream = compress_chunks(smooth_field, "sz-lr", 1e-2, n_chunks=2)
        parsed = ChunkedStream.frombytes(stream.tobytes())
        assert parsed.shape == stream.shape
        out = decompress_chunks(parsed)
        assert np.abs(out - smooth_field).max() <= 1e-2 * (1 + 1e-12)

    def test_garbage_rejected(self):
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            ChunkedStream.frombytes(b"nope")

    def test_compressed_bytes_positive(self, smooth_field):
        stream = compress_chunks(smooth_field, "sz-lr", 1e-3, n_chunks=2)
        assert 0 < stream.compressed_bytes < smooth_field.nbytes


class TestPatchCompression:
    def test_order_preserved(self, rng):
        patches = [rng.normal(size=(6, 6, 6)) + i for i in range(5)]
        blobs = compress_patches(patches, "sz-lr", 1e-3, mode="abs", parallel="thread")
        from repro.compression import decompress_any

        for patch, blob in zip(patches, blobs):
            out = decompress_any(blob)
            assert np.abs(out - patch).max() <= 1e-3 * (1 + 1e-12)
