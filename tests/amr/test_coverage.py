"""Tests for repro.amr.coverage."""

from __future__ import annotations

import numpy as np

from repro.amr import (
    AMRHierarchy,
    Box,
    BoxArray,
    exposed_fraction,
    level_covered_masks,
    patch_covered_mask,
)

from tests.conftest import make_sphere_hierarchy


class TestPatchCoveredMask:
    def test_half_covered(self):
        patch_box = Box((0, 0), (3, 3))
        fine = BoxArray([Box((0, 0), (3, 7))])  # coarsens to (0,0)-(1,3)
        mask = patch_covered_mask(patch_box, fine, (2, 2))
        assert mask[:2].all()
        assert not mask[2:].any()

    def test_no_overlap(self):
        mask = patch_covered_mask(Box((0, 0), (3, 3)), BoxArray([Box((20, 20), (23, 23))]), 2)
        assert not mask.any()

    def test_scalar_ratio(self):
        mask = patch_covered_mask(Box((0,), (7,)), BoxArray([Box((0,), (7,))]), 2)
        assert mask[:4].all() and not mask[4:].any()


class TestLevelMasks:
    def test_finest_level_all_false(self, sphere_hierarchy: AMRHierarchy):
        masks = level_covered_masks(sphere_hierarchy, 1)
        assert all(not m.any() for m in masks)

    def test_coarse_level_half_covered(self, sphere_hierarchy: AMRHierarchy):
        masks = level_covered_masks(sphere_hierarchy, 0)
        assert len(masks) == 1
        m = masks[0]
        assert m[8:].all() and not m[:8].any()

    def test_masks_align_with_boxes(self, multi_field_hierarchy):
        masks = level_covered_masks(multi_field_hierarchy, 0)
        for m, b in zip(masks, multi_field_hierarchy[0].boxes):
            assert m.shape == b.shape


class TestExposedFraction:
    def test_sphere(self, sphere_hierarchy: AMRHierarchy):
        assert exposed_fraction(sphere_hierarchy, 0) == 0.5
        assert exposed_fraction(sphere_hierarchy, 1) == 1.0

    def test_consistent_with_densities(self):
        h = make_sphere_hierarchy(8)
        # Level 0 stores the full domain; exposed fraction = density share.
        assert exposed_fraction(h, 0) == h.densities()[0]
