"""Tests for the storage / I/O cost model."""

from __future__ import annotations

import pytest

from repro.amr import campaign_cost, snapshot_bytes
from repro.errors import ReproError

from tests.conftest import make_sphere_hierarchy


class TestSnapshotBytes:
    def test_counts_all_levels_and_fields(self):
        h = make_sphere_hierarchy(8)
        expect = h.stored_cells() * 1 * 8  # one field, float64
        assert snapshot_bytes(h) == expect

    def test_bytes_per_value(self):
        h = make_sphere_hierarchy(8)
        assert snapshot_bytes(h, bytes_per_value=4) == snapshot_bytes(h) // 2

    def test_bad_bytes_rejected(self):
        with pytest.raises(ReproError):
            snapshot_bytes(make_sphere_hierarchy(8), 0)


class TestCampaignCost:
    def test_paper_arithmetic_shape(self):
        # The paper's example: 25 snapshots x 5 runs turns one snapshot
        # into ~125x the storage.
        h = make_sphere_hierarchy(8)
        cost = campaign_cost(h, compression_ratio=1.0)
        assert cost.total_raw_bytes == snapshot_bytes(h) * 125

    def test_compression_scales_storage(self):
        h = make_sphere_hierarchy(8)
        plain = campaign_cost(h, compression_ratio=1.0)
        comp = campaign_cost(h, compression_ratio=40.0)
        assert comp.total_compressed_bytes == pytest.approx(plain.total_raw_bytes / 40.0)
        assert comp.saved_bytes > 0.97 * plain.total_raw_bytes

    def test_write_time_scales_with_bandwidth(self):
        h = make_sphere_hierarchy(8)
        slow = campaign_cost(h, bandwidth_gbps=1.0)
        fast = campaign_cost(h, bandwidth_gbps=10.0)
        assert slow.raw_write_seconds == pytest.approx(10 * fast.raw_write_seconds)

    def test_compressed_write_faster(self):
        h = make_sphere_hierarchy(8)
        cost = campaign_cost(h, compression_ratio=20.0)
        assert cost.compressed_write_seconds < cost.raw_write_seconds / 19

    def test_validation(self):
        h = make_sphere_hierarchy(8)
        with pytest.raises(ReproError):
            campaign_cost(h, compression_ratio=0.0)
        with pytest.raises(ReproError):
            campaign_cost(h, snapshots=0)
        with pytest.raises(ReproError):
            campaign_cost(h, bandwidth_gbps=-1.0)
