"""Tests for plotfile I/O (repro.amr.io)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.amr import flatten_to_uniform, read_plotfile, write_plotfile
from repro.errors import FormatError


class TestRoundtrip:
    def test_structure_and_data(self, sphere_hierarchy, tmp_path):
        path = write_plotfile(tmp_path / "plt", sphere_hierarchy)
        loaded = read_plotfile(path)
        assert loaded.n_levels == sphere_hierarchy.n_levels
        assert loaded.field_names == sphere_hierarchy.field_names
        assert loaded.ref_ratios == sphere_hierarchy.ref_ratios
        a = flatten_to_uniform(sphere_hierarchy, "f")
        b = flatten_to_uniform(loaded, "f")
        assert np.array_equal(a, b)

    def test_multi_field(self, multi_field_hierarchy, tmp_path):
        path = write_plotfile(tmp_path / "plt", multi_field_hierarchy)
        loaded = read_plotfile(path)
        for name in ("a", "b"):
            for lev_idx in range(2):
                orig = multi_field_hierarchy[lev_idx].patches(name)
                got = loaded[lev_idx].patches(name)
                for p, q in zip(orig, got):
                    assert np.array_equal(p.data, q.data)

    def test_dx_preserved(self, sphere_hierarchy, tmp_path):
        loaded = read_plotfile(write_plotfile(tmp_path / "plt", sphere_hierarchy))
        assert loaded[1].dx == sphere_hierarchy[1].dx


class TestErrors:
    def test_existing_dir_rejected(self, sphere_hierarchy, tmp_path):
        write_plotfile(tmp_path / "plt", sphere_hierarchy)
        with pytest.raises(FormatError):
            write_plotfile(tmp_path / "plt", sphere_hierarchy)

    def test_overwrite_allowed(self, sphere_hierarchy, tmp_path):
        write_plotfile(tmp_path / "plt", sphere_hierarchy)
        write_plotfile(tmp_path / "plt", sphere_hierarchy, overwrite=True)

    def test_missing_header(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FormatError):
            read_plotfile(tmp_path / "empty")

    def test_corrupt_header(self, sphere_hierarchy, tmp_path):
        path = write_plotfile(tmp_path / "plt", sphere_hierarchy)
        (path / "Header.json").write_text("{not json")
        with pytest.raises(FormatError):
            read_plotfile(path)

    def test_wrong_format_name(self, sphere_hierarchy, tmp_path):
        path = write_plotfile(tmp_path / "plt", sphere_hierarchy)
        hdr = json.loads((path / "Header.json").read_text())
        hdr["format"] = "other"
        (path / "Header.json").write_text(json.dumps(hdr))
        with pytest.raises(FormatError):
            read_plotfile(path)

    def test_missing_patch_file(self, sphere_hierarchy, tmp_path):
        path = write_plotfile(tmp_path / "plt", sphere_hierarchy)
        (path / "level_1" / "f_00000.npy").unlink()
        with pytest.raises(FormatError):
            read_plotfile(path)

    def test_shape_mismatch_detected(self, sphere_hierarchy, tmp_path):
        path = write_plotfile(tmp_path / "plt", sphere_hierarchy)
        np.save(path / "level_1" / "f_00000.npy", np.zeros((2, 2, 2)))
        with pytest.raises(FormatError):
            read_plotfile(path)
