"""Tests for repro.amr.tagging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import dilate_tags, tag_fraction, tag_gradient, tag_threshold
from repro.errors import ReproError


class TestThreshold:
    def test_basic(self):
        arr = np.array([[0.0, 1.0], [2.0, 3.0]])
        assert tag_threshold(arr, 1.5).sum() == 2

    def test_none_above(self):
        assert not tag_threshold(np.zeros((3, 3)), 1.0).any()


class TestGradient:
    def test_step_edge_tagged(self):
        arr = np.zeros((8, 8))
        arr[:, 4:] = 10.0
        tags = tag_gradient(arr, 1.0)
        assert tags[:, 3:5].all()
        assert not tags[:, 0].any()

    def test_constant_untagged(self):
        assert not tag_gradient(np.full((5, 5), 3.0), 1e-9).any()

    def test_3d(self):
        arr = np.zeros((6, 6, 6))
        arr[3:] = 5.0
        tags = tag_gradient(arr, 1.0)
        assert tags[2:4].all()


class TestFraction:
    def test_fraction_approximate(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=(20, 20, 20))
        tags = tag_fraction(arr, 0.25)
        frac = tags.mean()
        assert 0.2 < frac < 0.3

    def test_fraction_one_tags_all(self):
        assert tag_fraction(np.arange(10.0), 1.0).all()

    def test_gradient_criterion(self):
        arr = np.zeros((10, 10))
        arr[:, 5:] = 1.0
        tags = tag_fraction(arr, 0.3, criterion="gradient")
        assert tags[:, 4:6].any()

    def test_bad_fraction_rejected(self):
        with pytest.raises(ReproError):
            tag_fraction(np.arange(10.0), 0.0)
        with pytest.raises(ReproError):
            tag_fraction(np.arange(10.0), 1.5)

    def test_bad_criterion_rejected(self):
        with pytest.raises(ReproError):
            tag_fraction(np.arange(10.0), 0.5, criterion="bogus")


class TestDilate:
    def test_single_cell_grows_to_cross(self):
        tags = np.zeros((5, 5), dtype=bool)
        tags[2, 2] = True
        grown = dilate_tags(tags, 1)
        assert grown.sum() == 5  # center + 4 axis neighbors

    def test_zero_iterations_identity(self):
        tags = np.zeros((4, 4), dtype=bool)
        tags[1, 1] = True
        assert np.array_equal(dilate_tags(tags, 0), tags)

    def test_does_not_wrap(self):
        tags = np.zeros((4, 4), dtype=bool)
        tags[0, 0] = True
        grown = dilate_tags(tags, 1)
        assert not grown[3, 0] and not grown[0, 3]

    def test_monotone(self):
        rng = np.random.default_rng(1)
        tags = rng.random((10, 10)) > 0.8
        grown = dilate_tags(tags, 2)
        assert (grown | tags).sum() == grown.sum()
