"""Tests for repro.amr.patch.Patch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import Box, Patch
from repro.errors import BoxError


class TestConstruction:
    def test_shape_must_match(self):
        with pytest.raises(BoxError):
            Patch(Box((0, 0), (3, 3)), np.zeros((3, 3)))

    def test_full(self):
        p = Patch.full(Box((0, 0, 0), (1, 1, 1)), fill=2.5)
        assert (p.data == 2.5).all()
        assert p.data.dtype == np.float64

    def test_full_int_dtype(self):
        p = Patch.full(Box((0,), (3,)), fill=1, dtype=np.int32)
        assert p.data.dtype == np.int32

    def test_from_function_samples_cell_centers(self):
        p = Patch.from_function(Box((0, 0), (1, 1)), lambda x, y: x + 10 * y, dx=1.0)
        # Cell centers at 0.5 and 1.5.
        assert p.data[0, 0] == pytest.approx(0.5 + 5.0)
        assert p.data[1, 1] == pytest.approx(1.5 + 15.0)

    def test_from_function_anisotropic_dx(self):
        p = Patch.from_function(Box((0,), (3,)), lambda x: x, dx=(0.25,))
        assert p.data[0] == pytest.approx(0.125)

    def test_from_function_offset_box(self):
        p = Patch.from_function(Box((4,), (5,)), lambda x: x, dx=2.0)
        assert p.data[0] == pytest.approx(9.0)  # (4 + 0.5) * 2

    def test_from_function_bad_dx(self):
        with pytest.raises(BoxError):
            Patch.from_function(Box((0, 0), (1, 1)), lambda x, y: x, dx=(1.0,))


class TestViews:
    def test_view_is_a_view(self):
        p = Patch.full(Box((0, 0), (4, 4)), 0.0)
        sub = Box((1, 1), (2, 2))
        v = p.view(sub)
        v[...] = 7.0
        assert p.data[1, 1] == 7.0
        assert p.data[0, 0] == 0.0

    def test_view_respects_box_offset(self):
        p = Patch(Box((10, 10), (13, 13)), np.arange(16, dtype=float).reshape(4, 4))
        v = p.view(Box((11, 12), (11, 12)))
        assert v[0, 0] == p.data[1, 2]

    def test_view_outside_rejected(self):
        p = Patch.full(Box((0, 0), (3, 3)), 0.0)
        with pytest.raises(BoxError):
            p.view(Box((2, 2), (5, 5)))

    def test_copy_is_deep(self):
        p = Patch.full(Box((0,), (3,)), 1.0)
        q = p.copy()
        q.data[0] = 9.0
        assert p.data[0] == 1.0

    def test_nbytes(self):
        p = Patch.full(Box((0, 0), (3, 3)), 0.0)
        assert p.nbytes == 16 * 8
