"""Tests for repro.amr.boxarray.BoxArray."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import Box, BoxArray
from repro.errors import BoxError


@pytest.fixture
def disjoint_pair() -> BoxArray:
    return BoxArray([Box((0, 0), (3, 3)), Box((4, 0), (7, 3))])


class TestContainer:
    def test_len_iter_getitem(self, disjoint_pair: BoxArray):
        assert len(disjoint_pair) == 2
        assert list(disjoint_pair)[0] == disjoint_pair[0]

    def test_equality(self, disjoint_pair: BoxArray):
        same = BoxArray([Box((0, 0), (3, 3)), Box((4, 0), (7, 3))])
        assert disjoint_pair == same
        assert disjoint_pair != BoxArray([Box((0, 0), (3, 3))])

    def test_mixed_dims_rejected(self):
        with pytest.raises(BoxError):
            BoxArray([Box((0,), (1,)), Box((0, 0), (1, 1))])

    def test_empty_array_properties(self):
        ba = BoxArray([])
        assert len(ba) == 0
        assert ba.cell_count() == 0
        with pytest.raises(BoxError):
            _ = ba.ndim
        with pytest.raises(BoxError):
            ba.bounding_box()


class TestGeometry:
    def test_bounding_box(self, disjoint_pair: BoxArray):
        assert disjoint_pair.bounding_box() == Box((0, 0), (7, 3))

    def test_cell_count_disjoint(self, disjoint_pair: BoxArray):
        assert disjoint_pair.cell_count() == 32

    def test_cell_count_overlapping_counts_union(self):
        ba = BoxArray([Box((0, 0), (3, 3)), Box((2, 0), (5, 3))])
        assert not ba.is_disjoint()
        assert ba.cell_count() == 6 * 4  # union is 0..5 x 0..3

    def test_is_disjoint(self, disjoint_pair: BoxArray):
        assert disjoint_pair.is_disjoint()

    def test_contains_point(self, disjoint_pair: BoxArray):
        assert disjoint_pair.contains_point((5, 2))
        assert not disjoint_pair.contains_point((8, 0))

    def test_mask_window(self, disjoint_pair: BoxArray):
        window = Box((2, 0), (5, 3))
        mask = disjoint_pair.mask(window)
        assert mask.shape == window.shape
        assert mask.all()  # window fully covered by the two boxes

    def test_mask_partial(self):
        ba = BoxArray([Box((0, 0), (1, 1))])
        mask = ba.mask(Box((0, 0), (3, 3)))
        assert mask.sum() == 4
        assert mask[0, 0] and not mask[2, 2]

    def test_intersecting(self, disjoint_pair: BoxArray):
        hits = disjoint_pair.intersecting(Box((3, 0), (4, 3)))
        assert len(hits) == 2
        none = disjoint_pair.intersecting(Box((10, 10), (11, 11)))
        assert len(none) == 0


class TestTransforms:
    def test_refine_coarsen(self, disjoint_pair: BoxArray):
        refined = disjoint_pair.refine(2)
        assert refined.cell_count() == disjoint_pair.cell_count() * 4
        assert refined.coarsen(2) == disjoint_pair

    def test_grow_overlaps(self, disjoint_pair: BoxArray):
        grown = disjoint_pair.grow(1)
        assert not grown.is_disjoint()

    def test_clamped_drops_outside(self):
        ba = BoxArray([Box((0, 0), (3, 3)), Box((10, 10), (12, 12))])
        clamped = ba.clamped(Box((0, 0), (5, 5)))
        assert len(clamped) == 1
        assert clamped[0] == Box((0, 0), (3, 3))

    def test_clamped_trims(self):
        ba = BoxArray([Box((2, 2), (8, 8))])
        clamped = ba.clamped(Box((0, 0), (5, 5)))
        assert clamped[0] == Box((2, 2), (5, 5))

    def test_mask_equals_per_box_or(self):
        rng = np.random.default_rng(0)
        boxes = []
        for _ in range(5):
            lo = rng.integers(0, 10, size=2)
            ext = rng.integers(0, 5, size=2)
            boxes.append(Box(tuple(lo), tuple(lo + ext)))
        ba = BoxArray(boxes)
        window = Box((0, 0), (15, 15))
        expected = np.zeros(window.shape, dtype=bool)
        for b in boxes:
            expected[b.slices()] = True
        assert np.array_equal(ba.mask(window), expected)
