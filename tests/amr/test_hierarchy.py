"""Tests for repro.amr.hierarchy.AMRHierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import AMRHierarchy, AMRLevel, Box, BoxArray, Patch
from repro.errors import HierarchyError

from tests.conftest import make_sphere_hierarchy


def _level(index: int, boxes: BoxArray, dx: float, fields=("f",), value: float = 0.0):
    lev = AMRLevel(index, boxes, (dx,) * boxes.ndim)
    for name in fields:
        lev.add_field(name, [Patch.full(b, value) for b in boxes])
    return lev


class TestValidation:
    def test_single_level_ok(self):
        dom = Box.from_shape((4, 4))
        h = AMRHierarchy(dom, [_level(0, BoxArray([dom]), 1.0)], 2)
        assert h.n_levels == 1

    def test_level0_must_tile_domain(self):
        dom = Box.from_shape((4, 4))
        partial = BoxArray([Box((0, 0), (1, 3))])
        with pytest.raises(HierarchyError):
            AMRHierarchy(dom, [_level(0, partial, 1.0)], 2)

    def test_nesting_violation_rejected(self):
        dom = Box.from_shape((4, 4))
        l0 = _level(0, BoxArray([dom]), 1.0)
        outside = BoxArray([Box((6, 6), (9, 9))])  # coarsens to (3,3)-(4,4): outside
        with pytest.raises(HierarchyError):
            AMRHierarchy(dom, [l0, _level(1, outside, 0.5)], 2)

    def test_field_mismatch_rejected(self):
        dom = Box.from_shape((4, 4))
        l0 = _level(0, BoxArray([dom]), 1.0, fields=("f",))
        l1 = _level(1, BoxArray([Box((0, 0), (3, 3))]), 0.5, fields=("g",))
        with pytest.raises(HierarchyError):
            AMRHierarchy(dom, [l0, l1], 2)

    def test_nonconsecutive_indices_rejected(self):
        dom = Box.from_shape((4, 4))
        l0 = _level(0, BoxArray([dom]), 1.0)
        l2 = _level(2, BoxArray([Box((0, 0), (3, 3))]), 0.5)
        with pytest.raises(HierarchyError):
            AMRHierarchy(dom, [l0, l2], 2)

    def test_wrong_ratio_count_rejected(self):
        dom = Box.from_shape((4, 4))
        l0 = _level(0, BoxArray([dom]), 1.0)
        with pytest.raises(HierarchyError):
            AMRHierarchy(dom, [l0], [2])

    def test_empty_levels_rejected(self):
        with pytest.raises(HierarchyError):
            AMRHierarchy(Box.from_shape((4, 4)), [], 2)


class TestQueries:
    def test_grid_shapes(self, sphere_hierarchy: AMRHierarchy):
        assert sphere_hierarchy.grid_shape(0) == (16, 16, 16)
        assert sphere_hierarchy.grid_shape(1) == (32, 32, 32)

    def test_cumulative_ratio(self):
        h = make_sphere_hierarchy(8)
        assert h.cumulative_ratio(0) == (1, 1, 1)
        assert h.cumulative_ratio(1) == (2, 2, 2)

    def test_domain_at(self, sphere_hierarchy: AMRHierarchy):
        assert sphere_hierarchy.domain_at(1).shape == (32, 32, 32)

    def test_field_names(self, sphere_hierarchy: AMRHierarchy):
        assert sphere_hierarchy.field_names == ("f",)

    def test_iter_and_getitem(self, sphere_hierarchy: AMRHierarchy):
        levels = list(sphere_hierarchy)
        assert levels[1] is sphere_hierarchy[1]


class TestCoverage:
    def test_covered_mask_half_domain(self, sphere_hierarchy: AMRHierarchy):
        covered = sphere_hierarchy.covered_mask(0)
        # Fine level refines the +x half.
        assert covered[8:].all()
        assert not covered[:8].any()

    def test_finest_level_never_covered(self, sphere_hierarchy: AMRHierarchy):
        assert not sphere_hierarchy.covered_mask(1).any()

    def test_densities_sum_to_one(self, sphere_hierarchy: AMRHierarchy):
        d = sphere_hierarchy.densities()
        assert sum(d) == pytest.approx(1.0)
        assert d[0] == pytest.approx(0.5)
        assert d[1] == pytest.approx(0.5)

    def test_stored_cells(self, sphere_hierarchy: AMRHierarchy):
        # 16^3 coarse plus 32x32x16... fine half: 16*32*32.
        assert sphere_hierarchy.stored_cells() == 16**3 + 16 * 32 * 32

    def test_nbytes_single_field(self, sphere_hierarchy: AMRHierarchy):
        assert sphere_hierarchy.nbytes("f") == sphere_hierarchy.stored_cells() * 8

    def test_nbytes_all_fields(self, multi_field_hierarchy: AMRHierarchy):
        assert multi_field_hierarchy.nbytes() == 2 * multi_field_hierarchy.nbytes("a")


class TestMapFields:
    def test_map_fields_applies(self, multi_field_hierarchy: AMRHierarchy):
        out = multi_field_hierarchy.map_fields(lambda lev, name, d: d * 0.0, fields=["a"])
        assert (out[0].patches("a")[0].data == 0.0).all()
        # Field b untouched.
        orig = multi_field_hierarchy[0].patches("b")[0].data
        assert np.array_equal(out[0].patches("b")[0].data, orig)

    def test_map_fields_copies(self, multi_field_hierarchy: AMRHierarchy):
        out = multi_field_hierarchy.map_fields(lambda lev, name, d: d)
        out[0].patches("a")[0].data[0, 0, 0] = 99.0
        assert multi_field_hierarchy[0].patches("a")[0].data[0, 0, 0] != 99.0
