"""Tests for ghost-cell filling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import AMRHierarchy, AMRLevel, Box, BoxArray, Patch, fill_ghosts
from repro.errors import HierarchyError

from tests.conftest import make_sphere_hierarchy


@pytest.fixture
def two_patch_hierarchy():
    """Level 0 full domain, level 1 = two adjacent patches."""
    dom = Box.from_shape((8, 8, 8))
    l0 = AMRLevel(0, BoxArray([dom]), (1.0,) * 3, {"f": [Patch.full(dom, 1.0)]})
    b1 = Box((0, 0, 0), (7, 7, 7))
    b2 = Box((8, 0, 0), (15, 7, 7))
    l1 = AMRLevel(
        1,
        BoxArray([b1, b2]),
        (0.5,) * 3,
        {"f": [Patch.full(b1, 2.0), Patch.full(b2, 3.0)]},
    )
    return AMRHierarchy(dom, [l0, l1], 2)


class TestFillGhosts:
    def test_shape_grows_by_halo(self, two_patch_hierarchy):
        out = fill_ghosts(two_patch_hierarchy, 1, 0, "f", n_ghost=2)
        assert out.shape == (12, 12, 12)
        assert np.isfinite(out).all()

    def test_interior_untouched(self, two_patch_hierarchy):
        out = fill_ghosts(two_patch_hierarchy, 1, 0, "f", n_ghost=1)
        assert (out[1:-1, 1:-1, 1:-1] == 2.0).all()

    def test_sibling_copy_preferred(self, two_patch_hierarchy):
        # Ghosts of patch 0 on its +x face lie inside patch 1 -> value 3.
        out = fill_ghosts(two_patch_hierarchy, 1, 0, "f", n_ghost=1)
        assert (out[-1, 1:-1, 1:-1] == 3.0).all()

    def test_coarse_interpolation_used(self, two_patch_hierarchy):
        # Ghosts of patch 0 on its +y face have no sibling; the coarse
        # level (value 1.0) fills them.
        out = fill_ghosts(two_patch_hierarchy, 1, 0, "f", n_ghost=1)
        assert (out[1:-1, -1, 1:-1] == 1.0).all()

    def test_domain_boundary_replicates(self, two_patch_hierarchy):
        # Level-0 patch covers the whole domain: all ghosts extrapolate.
        out = fill_ghosts(two_patch_hierarchy, 0, 0, "f", n_ghost=1)
        assert (out == 1.0).all()

    def test_gradient_continuity_on_smooth_field(self):
        # On the sphere-distance hierarchy, filled ghosts approximate the
        # analytic field: check the halo error stays below one coarse cell.
        h = make_sphere_hierarchy(16)
        out = fill_ghosts(h, 1, 0, "f", n_ghost=1)
        fine = h[1].patches("f")[0]
        box = fine.box.grow(1)
        dx = h[1].dx[0]
        axes = [(np.arange(box.lo[d], box.hi[d] + 1) + 0.5) * dx for d in range(3)]
        xx, yy, zz = np.meshgrid(*axes, indexing="ij")
        exact = np.sqrt((xx - 1.0) ** 2 + (yy - 1.0) ** 2 + (zz - 1.0) ** 2)
        # Interior exact; ghosts from coarse injection / extrapolation are
        # first-order accurate: within ~1.5 coarse cells.
        assert np.abs(out - exact).max() < 3.0 * (2 * dx)

    def test_bad_args(self, two_patch_hierarchy):
        with pytest.raises(HierarchyError):
            fill_ghosts(two_patch_hierarchy, 1, 0, "f", n_ghost=0)
        with pytest.raises(HierarchyError):
            fill_ghosts(two_patch_hierarchy, 1, 99, "f")
