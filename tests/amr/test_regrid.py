"""Tests for Berger-Rigoutsos clustering (repro.amr.regrid)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.amr import Box, boxes_from_mask, cluster_tags
from repro.errors import ReproError


def _covers(boxes, tags: np.ndarray) -> bool:
    window = Box.from_shape(tags.shape)
    if len(boxes) == 0:
        return not tags.any()
    return bool((boxes.mask(window) | ~tags).all())


class TestClusterBasics:
    def test_empty_tags_empty_boxes(self):
        assert len(cluster_tags(np.zeros((8, 8), dtype=bool))) == 0

    def test_single_cell(self):
        tags = np.zeros((8, 8), dtype=bool)
        tags[3, 5] = True
        boxes = cluster_tags(tags)
        assert len(boxes) == 1
        assert boxes[0] == Box((3, 5), (3, 5))

    def test_full_domain(self):
        tags = np.ones((6, 6, 6), dtype=bool)
        boxes = cluster_tags(tags)
        assert _covers(boxes, tags)
        assert boxes.cell_count() == tags.size

    def test_rectangle_exact(self):
        tags = np.zeros((16, 16), dtype=bool)
        tags[2:9, 4:12] = True
        boxes = cluster_tags(tags, efficiency=0.9)
        assert _covers(boxes, tags)
        assert boxes.cell_count() == 7 * 8  # one tight box

    def test_two_separated_clusters_split_at_hole(self):
        tags = np.zeros((20, 8), dtype=bool)
        tags[1:5, 2:6] = True
        tags[14:19, 1:4] = True
        boxes = cluster_tags(tags, efficiency=0.8)
        assert _covers(boxes, tags)
        assert len(boxes) == 2

    def test_efficiency_reached(self):
        rng = np.random.default_rng(3)
        tags = rng.random((24, 24)) > 0.85
        boxes = cluster_tags(tags, efficiency=0.5)
        assert _covers(boxes, tags)
        window = Box.from_shape(tags.shape)
        covered = boxes.mask(window).sum()
        assert tags.sum() / covered >= 0.3  # overall efficiency reasonable

    def test_disjoint(self):
        rng = np.random.default_rng(4)
        tags = rng.random((16, 16, 16)) > 0.7
        boxes = cluster_tags(tags)
        assert boxes.is_disjoint()

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ReproError):
            cluster_tags(np.ones((4, 4), dtype=bool), efficiency=0.0)


class TestBlocking:
    def test_blocking_factor_alignment(self):
        tags = np.zeros((16, 16), dtype=bool)
        tags[3:6, 5:7] = True
        boxes = cluster_tags(tags, blocking_factor=4)
        assert _covers(boxes, tags)
        for b in boxes:
            for lo, s, n in zip(b.lo, b.shape, (16, 16)):
                assert lo % 4 == 0
                # Boxes at the domain edge may be clipped below the factor.
                assert s % 4 == 0 or lo + s == n

    def test_blocking_stays_disjoint(self):
        rng = np.random.default_rng(5)
        tags = rng.random((32, 32)) > 0.75
        boxes = cluster_tags(tags, blocking_factor=8)
        assert boxes.is_disjoint()
        assert _covers(boxes, tags)


class TestBoxesFromMask:
    def test_exact_decomposition(self):
        rng = np.random.default_rng(6)
        mask = rng.random((12, 12)) > 0.6
        boxes = boxes_from_mask(mask)
        window = Box.from_shape(mask.shape)
        assert np.array_equal(boxes.mask(window), mask)
        assert boxes.is_disjoint()

    def test_full_mask_one_box(self):
        boxes = boxes_from_mask(np.ones((5, 7), dtype=bool))
        assert len(boxes) == 1
        assert boxes[0].shape == (5, 7)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**20 - 1), st.integers(1, 4))
    def test_cover_and_disjoint_random_masks(self, bits: int, blocking: int):
        tags = np.array([(bits >> i) & 1 for i in range(20)], dtype=bool).reshape(4, 5)
        # Lift to 3-D for a stricter exercise.
        tags3 = np.broadcast_to(tags[..., None], (4, 5, 3)).copy()
        boxes = cluster_tags(tags3, blocking_factor=blocking)
        assert _covers(boxes, tags3)
        assert boxes.is_disjoint()
