"""Tests for repro.amr.level.AMRLevel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import AMRLevel, Box, BoxArray, Patch
from repro.errors import HierarchyError


@pytest.fixture
def two_box_level() -> AMRLevel:
    boxes = BoxArray([Box((0, 0), (3, 3)), Box((4, 0), (7, 3))])
    level = AMRLevel(0, boxes, (1.0, 1.0))
    level.add_field("f", [Patch.full(boxes[0], 1.0), Patch.full(boxes[1], 2.0)])
    return level


class TestConstruction:
    def test_negative_index_rejected(self):
        with pytest.raises(HierarchyError):
            AMRLevel(-1, BoxArray([Box((0,), (1,))]), (1.0,))

    def test_empty_boxes_rejected(self):
        with pytest.raises(HierarchyError):
            AMRLevel(0, BoxArray([]), (1.0,))

    def test_overlapping_boxes_rejected(self):
        with pytest.raises(HierarchyError):
            AMRLevel(0, BoxArray([Box((0,), (5,)), Box((3,), (8,))]), (1.0,))

    def test_dx_dim_mismatch_rejected(self):
        with pytest.raises(HierarchyError):
            AMRLevel(0, BoxArray([Box((0, 0), (1, 1))]), (1.0,))


class TestFields:
    def test_field_names(self, two_box_level: AMRLevel):
        assert two_box_level.field_names == ("f",)

    def test_patch_count_must_match(self, two_box_level: AMRLevel):
        with pytest.raises(HierarchyError):
            two_box_level.add_field("g", [Patch.full(two_box_level.boxes[0], 0.0)])

    def test_patch_box_must_match(self, two_box_level: AMRLevel):
        wrong = Patch.full(Box((0, 0), (2, 2)), 0.0)
        with pytest.raises(HierarchyError):
            two_box_level.add_field("g", [wrong, wrong])

    def test_missing_field_raises(self, two_box_level: AMRLevel):
        with pytest.raises(HierarchyError):
            two_box_level.patches("nope")

    def test_map_field_in_place(self, two_box_level: AMRLevel):
        two_box_level.map_field("f", lambda d: d * 10)
        assert two_box_level.patches("f")[0].data[0, 0] == 10.0

    def test_map_field_new_name(self, two_box_level: AMRLevel):
        two_box_level.map_field("f", np.square, name="f2")
        assert "f2" in two_box_level.field_names
        assert two_box_level.patches("f")[1].data[0, 0] == 2.0
        assert two_box_level.patches("f2")[1].data[0, 0] == 4.0


class TestAssembly:
    def test_to_array_full_window(self, two_box_level: AMRLevel):
        arr = two_box_level.to_array("f")
        assert arr.shape == (8, 4)
        assert (arr[:4] == 1.0).all()
        assert (arr[4:] == 2.0).all()

    def test_to_array_fill_uncovered(self):
        boxes = BoxArray([Box((0, 0), (1, 1))])
        level = AMRLevel(1, boxes, (1.0, 1.0), {"f": [Patch.full(boxes[0], 3.0)]})
        arr = level.to_array("f", window=Box((0, 0), (3, 3)))
        assert np.isnan(arr[2, 2])
        assert arr[0, 0] == 3.0

    def test_to_array_custom_fill(self, two_box_level: AMRLevel):
        arr = two_box_level.to_array("f", window=Box((0, 0), (9, 9)), fill=-1.0)
        assert arr[9, 9] == -1.0

    def test_cell_count(self, two_box_level: AMRLevel):
        assert two_box_level.cell_count() == 32

    def test_ndim(self, two_box_level: AMRLevel):
        assert two_box_level.ndim == 2
