"""Tests for repro.amr.uniform (up-sampling and compositing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import (
    AMRHierarchy,
    AMRLevel,
    Box,
    BoxArray,
    Patch,
    flatten_to_uniform,
    upsample_linear,
    upsample_nearest,
)
from repro.errors import HierarchyError


class TestUpsampleNearest:
    def test_each_cell_repeats(self):
        arr = np.array([[1.0, 2.0], [3.0, 4.0]])
        up = upsample_nearest(arr, (2, 2))
        assert up.shape == (4, 4)
        assert (up[:2, :2] == 1.0).all()
        assert (up[2:, 2:] == 4.0).all()

    def test_ratio_one_identity(self):
        arr = np.arange(6.0).reshape(2, 3)
        assert np.array_equal(upsample_nearest(arr, (1, 1)), arr)

    def test_anisotropic(self):
        arr = np.array([[1.0, 2.0]])
        up = upsample_nearest(arr, (3, 1))
        assert up.shape == (3, 2)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(HierarchyError):
            upsample_nearest(np.zeros((2, 2)), (2,))

    def test_conservation(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=(4, 5))
        up = upsample_nearest(arr, (2, 2))
        assert up.mean() == pytest.approx(arr.mean())


class TestUpsampleLinear:
    def test_shape(self):
        up = upsample_linear(np.zeros((3, 4)), (2, 2))
        assert up.shape == (6, 8)

    def test_linear_ramp_preserved(self):
        # A linear function should be reproduced exactly in the interior.
        x = np.arange(8.0)
        up = upsample_linear(x, (2,))
        # Fine centers at coarse coords -0.25, 0.25, 0.75, ...
        inner = up[1:-1]
        expect = np.arange(16.0)[1:-1] * 0.5 - 0.25
        assert np.allclose(inner, expect)

    def test_constant_field_exact(self):
        up = upsample_linear(np.full((3, 3), 7.0), (4, 4))
        assert np.allclose(up, 7.0)

    def test_edges_clamped(self):
        up = upsample_linear(np.array([0.0, 10.0]), (2,))
        assert up[0] == 0.0  # clamped, not extrapolated


class TestFlatten:
    def test_single_level_identity(self, rng):
        dom = Box.from_shape((4, 4, 4))
        data = rng.normal(size=dom.shape)
        lev = AMRLevel(0, BoxArray([dom]), (1.0,) * 3, {"f": [Patch(dom, data)]})
        h = AMRHierarchy(dom, [lev], 2)
        assert np.array_equal(flatten_to_uniform(h, "f"), data)

    def test_fine_overrides_coarse(self, sphere_hierarchy):
        uniform = flatten_to_uniform(sphere_hierarchy, "f")
        assert uniform.shape == (32, 32, 32)
        fine = sphere_hierarchy[1].patches("f")[0]
        assert np.array_equal(uniform[16:], fine.data)

    def test_nearest_matches_manual_upsample(self, sphere_hierarchy):
        uniform = flatten_to_uniform(sphere_hierarchy, "f", method="nearest")
        coarse = sphere_hierarchy[0].patches("f")[0].data
        up = upsample_nearest(coarse, (2, 2, 2))
        # Un-refined half comes from the coarse level.
        assert np.array_equal(uniform[:16], up[:16])

    def test_linear_method_runs(self, sphere_hierarchy):
        uniform = flatten_to_uniform(sphere_hierarchy, "f", method="linear")
        assert np.isfinite(uniform).all()

    def test_unknown_method_rejected(self, sphere_hierarchy):
        with pytest.raises(HierarchyError):
            flatten_to_uniform(sphere_hierarchy, "f", method="cubic")
