"""Unit and property tests for repro.amr.box.Box."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.amr import Box
from repro.errors import BoxError


def boxes_3d(max_coord: int = 20, max_extent: int = 8):
    """Hypothesis strategy for small 3-D boxes."""

    def build(lo, ext):
        return Box(tuple(lo), tuple(l + e for l, e in zip(lo, ext)))

    lo = st.tuples(*[st.integers(-max_coord, max_coord)] * 3)
    ext = st.tuples(*[st.integers(0, max_extent)] * 3)
    return st.builds(build, lo, ext)


class TestConstruction:
    def test_basic_shape_and_size(self):
        b = Box((0, 0, 0), (7, 3, 1))
        assert b.shape == (8, 4, 2)
        assert b.size == 64
        assert b.ndim == 3

    def test_from_shape(self):
        b = Box.from_shape((4, 5), lo=(2, 3))
        assert b.lo == (2, 3)
        assert b.hi == (5, 7)

    def test_single_cell(self):
        b = Box((1, 1, 1), (1, 1, 1))
        assert b.size == 1

    def test_empty_box_rejected(self):
        with pytest.raises(BoxError):
            Box((0, 0), (-1, 0))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(BoxError):
            Box((0, 0), (1, 1, 1))

    def test_zero_dim_rejected(self):
        with pytest.raises(BoxError):
            Box((), ())

    def test_from_shape_nonpositive_rejected(self):
        with pytest.raises(BoxError):
            Box.from_shape((0, 4))


class TestQueries:
    def test_contains_point(self):
        b = Box((0, 0), (3, 3))
        assert b.contains_point((0, 0))
        assert b.contains_point((3, 3))
        assert not b.contains_point((4, 0))

    def test_contains_point_dim_mismatch(self):
        with pytest.raises(BoxError):
            Box((0, 0), (1, 1)).contains_point((0, 0, 0))

    def test_contains_box(self):
        outer = Box((0, 0), (9, 9))
        assert outer.contains_box(Box((2, 2), (5, 5)))
        assert outer.contains_box(outer)
        assert not outer.contains_box(Box((5, 5), (10, 10)))

    def test_intersection(self):
        a = Box((0, 0), (4, 4))
        b = Box((3, 3), (6, 6))
        ov = a.intersection(b)
        assert ov == Box((3, 3), (4, 4))

    def test_disjoint_intersection_none(self):
        assert Box((0, 0), (1, 1)).intersection(Box((5, 5), (6, 6))) is None

    def test_touching_boxes_intersect_on_shared_cell_only(self):
        a = Box((0,), (4,))
        b = Box((4,), (8,))
        assert a.intersection(b) == Box((4,), (4,))
        assert Box((0,), (3,)).intersection(b) is None


class TestTransforms:
    def test_refine_coarsen_roundtrip(self):
        b = Box((1, 2, 3), (4, 5, 6))
        assert b.refine(2).coarsen(2) == b

    def test_refine_scales_size(self):
        b = Box((0, 0, 0), (3, 3, 3))
        assert b.refine(2).size == b.size * 8

    def test_refine_anisotropic(self):
        b = Box((0, 0), (1, 1))
        r = b.refine((2, 4))
        assert r.shape == (4, 8)

    def test_coarsen_negative_coords_floor(self):
        # AMReX coarsen floors: cell -1 maps to coarse cell -1 (not 0).
        b = Box((-2, -1), (1, 1))
        c = b.coarsen(2)
        assert c.lo == (-1, -1)
        assert c.hi == (0, 0)

    def test_shift(self):
        b = Box((0, 0), (2, 2)).shift((5, -1))
        assert b.lo == (5, -1) and b.hi == (7, 1)

    def test_grow_and_shrink(self):
        b = Box((2, 2), (5, 5))
        assert b.grow(1) == Box((1, 1), (6, 6))
        assert b.grow(-1) == Box((3, 3), (4, 4))

    def test_overshrink_rejected(self):
        with pytest.raises(BoxError):
            Box((0, 0), (1, 1)).grow(-1)

    def test_bad_ratio_rejected(self):
        with pytest.raises(BoxError):
            Box((0,), (3,)).refine(0)
        with pytest.raises(BoxError):
            Box((0,), (3,)).coarsen(0)


class TestIndexing:
    def test_slices_roundtrip(self):
        arr = np.arange(64).reshape(4, 4, 4)
        sub = Box((1, 1, 1), (2, 3, 2))
        view = arr[sub.slices()]
        assert view.shape == sub.shape
        assert view[0, 0, 0] == arr[1, 1, 1]

    def test_slices_with_origin(self):
        outer = Box((10, 10), (19, 19))
        inner = Box((12, 14), (13, 16))
        arr = np.zeros(outer.shape)
        arr[inner.slices(outer.lo)] = 1.0
        assert arr.sum() == inner.size

    def test_split(self):
        a, b = Box((0, 0), (5, 3)).split(0, 2)
        assert a == Box((0, 0), (2, 3))
        assert b == Box((3, 0), (5, 3))
        assert a.size + b.size == 24

    def test_split_invalid_index(self):
        with pytest.raises(BoxError):
            Box((0,), (3,)).split(0, 3)
        with pytest.raises(BoxError):
            Box((0,), (3,)).split(1, 1)

    def test_chunk_tiles_exactly(self):
        b = Box((0, 0, 0), (9, 9, 9))
        tiles = list(b.chunk(4))
        assert sum(t.size for t in tiles) == b.size
        for t in tiles:
            assert b.contains_box(t)
            assert all(s <= 4 for s in t.shape)


class TestProperties:
    @given(boxes_3d(), boxes_3d())
    def test_intersection_commutes(self, a: Box, b: Box):
        assert a.intersection(b) == b.intersection(a)

    @given(boxes_3d(), boxes_3d())
    def test_intersection_contained(self, a: Box, b: Box):
        ov = a.intersection(b)
        if ov is not None:
            assert a.contains_box(ov)
            assert b.contains_box(ov)
            assert a.intersects(b)
        else:
            assert not a.intersects(b)

    @given(boxes_3d(), st.integers(1, 4))
    def test_refine_coarsen_identity(self, b: Box, r: int):
        assert b.refine(r).coarsen(r) == b

    @given(boxes_3d(), st.integers(1, 4))
    def test_coarsen_then_refine_covers(self, b: Box, r: int):
        cover = b.coarsen(r).refine(r)
        assert cover.contains_box(b)

    @given(boxes_3d(), st.integers(0, 3))
    def test_grow_size_monotone(self, b: Box, n: int):
        assert b.grow(n).size >= b.size

    @given(boxes_3d())
    def test_chunk_partition_property(self, b: Box):
        tiles = list(b.chunk(3))
        assert sum(t.size for t in tiles) == b.size
