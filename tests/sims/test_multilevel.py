"""Tests for n-level hierarchy construction (beyond the paper's 2 levels)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import Box, BoxArray, flatten_to_uniform
from repro.errors import ReproError
from repro.sims import NyxConfig
from repro.sims.amr_build import multi_level_hierarchy, nested_calibrated_boxes
from repro.sims.nyx import nyx_multilevel_hierarchy


@pytest.fixture(scope="module")
def three_level():
    return nyx_multilevel_hierarchy(NyxConfig(coarse_n=16), levels=3)


class TestMultiLevelBuilder:
    def test_manual_three_level(self, rng):
        # Finest 16^3 -> level-1 grid 8^3, level-0 grid 4^3.
        fine = {"f": rng.normal(size=(16, 16, 16))}
        l1 = BoxArray([Box((0, 0, 0), (7, 7, 3))])  # level-1 space (8^3)
        l2 = BoxArray([Box((0, 0, 0), (15, 15, 7))])  # level-2 space, nested
        h = multi_level_hierarchy(fine, [l1, l2], dx_coarse=0.25)
        assert h.n_levels == 3
        assert h.grid_shape(2) == (16, 16, 16)
        # Finest data is exactly the input.
        assert np.array_equal(h[2].patches("f")[0].data, fine["f"][:, :, :8])

    def test_coarse_levels_are_average_down(self, rng):
        fine = {"f": rng.normal(size=(8, 8, 8))}
        l1 = BoxArray([Box((0, 0, 0), (3, 3, 3))])
        l2 = BoxArray([Box((0, 0, 0), (3, 3, 3))])
        h = multi_level_hierarchy(fine, [l1, l2], dx_coarse=1.0)
        coarse = h[0].patches("f")[0].data
        pooled = fine["f"].reshape(2, 4, 2, 4, 2, 4).mean(axis=(1, 3, 5))
        assert np.allclose(coarse, pooled)

    def test_indivisible_shape_rejected(self, rng):
        fine = {"f": rng.normal(size=(6, 6, 6))}
        with pytest.raises(ReproError):
            multi_level_hierarchy(fine, [BoxArray([Box((0, 0, 0), (1, 1, 1))])] * 2, 1.0)

    def test_no_fields_rejected(self):
        with pytest.raises(ReproError):
            multi_level_hierarchy({}, [], 1.0)


class TestNestedCalibration:
    def test_boxes_inside_outer(self, rng):
        score = rng.random((32, 32, 32))
        outer = BoxArray([Box((0, 0, 0), (15, 31, 31))])
        inner = nested_calibrated_boxes(score, outer, 0.1)
        for b in inner:
            assert any(ob.contains_box(b) for ob in outer)

    def test_empty_outer_rejected(self, rng):
        score = rng.random((8, 8, 8))
        outer = BoxArray([Box((0, 0, 0), (7, 7, 7))])
        # Valid outer works; an out-of-domain outer cannot be constructed
        # via mask, so test the too-large-fraction path instead.
        boxes = nested_calibrated_boxes(score, outer, 0.5)
        assert len(boxes) >= 1


class TestNyxThreeLevel:
    def test_structure(self, three_level):
        h = three_level
        assert h.n_levels == 3
        assert h.grid_shape(0) == (16, 16, 16)
        assert h.grid_shape(2) == (64, 64, 64)

    def test_densities_sum_to_one(self, three_level):
        d = three_level.densities()
        assert sum(d) == pytest.approx(1.0)
        assert d[0] > d[1] > d[2] > 0

    def test_finest_tracks_density_peaks(self, three_level):
        h = three_level
        covered1 = h.covered_mask(1)  # level-1 cells under level 2
        rho1 = h[1].to_array("baryon_density", h.domain_at(1), fill=np.nan)
        inside = rho1[covered1]
        outside = rho1[h[1].boxes.mask(h.domain_at(1)) & ~covered1]
        assert np.nanmean(inside) > np.nanmean(outside)

    def test_uniform_composite_finite(self, three_level):
        u = flatten_to_uniform(three_level, "baryon_density")
        assert u.shape == (64, 64, 64)
        assert np.isfinite(u).all()

    def test_full_pipeline_runs(self, three_level):
        from repro.compression import compress_hierarchy, decompress_hierarchy
        from repro.viz import crack_report, dual_cell_isosurface

        c = compress_hierarchy(three_level, "sz-interp", 1e-3, fields=["baryon_density"])
        assert c.ratio > 1.0
        restored = decompress_hierarchy(c, three_level)
        result = dual_cell_isosurface(restored, "baryon_density", 2.0, gap_fix="redundant")
        assert len(result.level_meshes) == 3
        report = crack_report(result, restored)
        assert report.open_edge_count >= 0  # runs without error

    def test_bad_level_count_rejected(self):
        with pytest.raises(ReproError):
            nyx_multilevel_hierarchy(NyxConfig(coarse_n=16), levels=1)

    def test_nonnested_fractions_rejected(self):
        with pytest.raises(ReproError):
            nyx_multilevel_hierarchy(
                NyxConfig(coarse_n=16), levels=3, fractions=(0.1, 0.4)
            )
