"""Tests for hierarchy assembly from fine fields."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import Box, BoxArray
from repro.errors import ReproError
from repro.sims import average_pool, calibrated_boxes, two_level_hierarchy
from repro.sims.spectral import gaussian_random_field


class TestAveragePool:
    def test_block_means(self):
        arr = np.arange(16.0).reshape(4, 4)
        pooled = average_pool(arr, 2)
        assert pooled.shape == (2, 2)
        assert pooled[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_conservation(self, rng):
        arr = rng.normal(size=(8, 8, 8))
        assert average_pool(arr, 2).mean() == pytest.approx(arr.mean())

    def test_indivisible_rejected(self):
        with pytest.raises(ReproError):
            average_pool(np.zeros((5, 4)), 2)


class TestCalibratedBoxes:
    def test_hits_target_fraction(self):
        score = gaussian_random_field((32, 32, 32), spectral_index=-3.0, seed=0)
        for target in (0.1, 0.4):
            boxes = calibrated_boxes(score, target, tolerance=0.05)
            dom = Box.from_shape(score.shape)
            frac = boxes.mask(dom).sum() / dom.size
            assert abs(frac - target) < 0.08

    def test_boxes_cover_high_scores(self):
        score = np.zeros((16, 16, 16))
        score[4:8, 4:8, 4:8] = 1.0
        boxes = calibrated_boxes(score, 0.0625, tolerance=0.02)
        dom = Box.from_shape(score.shape)
        mask = boxes.mask(dom)
        assert mask[5, 5, 5]

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ReproError):
            calibrated_boxes(np.zeros((8, 8)), 0.0)
        with pytest.raises(ReproError):
            calibrated_boxes(np.zeros((8, 8)), 1.0)


class TestTwoLevelHierarchy:
    def test_assembly(self, rng):
        fine = {"f": rng.normal(size=(16, 16, 16)), "g": rng.normal(size=(16, 16, 16))}
        boxes = BoxArray([Box((0, 0, 0), (3, 3, 3))])
        h = two_level_hierarchy(fine, boxes, dx_coarse=0.125)
        assert h.n_levels == 2
        assert h.grid_shape(1) == (16, 16, 16)
        assert set(h.field_names) == {"f", "g"}

    def test_coarse_is_average_down(self, rng):
        data = rng.normal(size=(8, 8, 8))
        boxes = BoxArray([Box((0, 0, 0), (1, 1, 1))])
        h = two_level_hierarchy({"f": data}, boxes, dx_coarse=0.25)
        coarse = h[0].patches("f")[0].data
        assert np.allclose(coarse, average_pool(data, 2))

    def test_fine_patches_cut_from_input(self, rng):
        data = rng.normal(size=(8, 8, 8))
        boxes = BoxArray([Box((1, 1, 1), (2, 2, 2))])
        h = two_level_hierarchy({"f": data}, boxes, dx_coarse=0.25)
        fine = h[1].patches("f")[0]
        assert fine.box == Box((2, 2, 2), (5, 5, 5))
        assert np.array_equal(fine.data, data[2:6, 2:6, 2:6])

    def test_dx_halves(self, rng):
        data = rng.normal(size=(8, 8, 8))
        boxes = BoxArray([Box((0, 0, 0), (1, 1, 1))])
        h = two_level_hierarchy({"f": data}, boxes, dx_coarse=1.0)
        assert h[1].dx == (0.5, 0.5, 0.5)

    def test_no_fields_rejected(self):
        with pytest.raises(ReproError):
            two_level_hierarchy({}, BoxArray([Box((0, 0, 0), (1, 1, 1))]), 1.0)

    def test_mismatched_shapes_rejected(self, rng):
        fine = {"f": rng.normal(size=(8, 8, 8)), "g": rng.normal(size=(4, 4, 4))}
        with pytest.raises(ReproError):
            two_level_hierarchy(fine, BoxArray([Box((0, 0, 0), (1, 1, 1))]), 1.0)
