"""Tests for the Nyx-like workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sims import NyxConfig, nyx_hierarchy, nyx_timesteps
from repro.sims.nyx import NYX_FIELDS


@pytest.fixture(scope="module")
def nyx():
    return nyx_hierarchy(NyxConfig(coarse_n=16, seed=0))


class TestStructure:
    def test_two_levels(self, nyx):
        assert nyx.n_levels == 2
        assert nyx.grid_shape(0) == (16, 16, 16)
        assert nyx.grid_shape(1) == (32, 32, 32)

    def test_six_fields(self, nyx):
        assert set(nyx.field_names) == set(NYX_FIELDS)

    def test_fine_fraction_near_table1(self):
        h = nyx_hierarchy(NyxConfig(coarse_n=32, seed=1))
        assert abs(h.densities()[1] - 0.407) < 0.08

    def test_deterministic(self):
        a = nyx_hierarchy(NyxConfig(coarse_n=16, seed=3))
        b = nyx_hierarchy(NyxConfig(coarse_n=16, seed=3))
        pa = a[0].patches("baryon_density")[0].data
        pb = b[0].patches("baryon_density")[0].data
        assert np.array_equal(pa, pb)

    def test_too_small_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            nyx_hierarchy(NyxConfig(coarse_n=4))


class TestPhysics:
    def test_density_positive_mean_one(self, nyx):
        d = nyx[0].patches("baryon_density")[0].data
        assert (d > 0).all()
        # Coarse level is the average-down of a mean-1 fine field.
        assert d.mean() == pytest.approx(1.0, rel=0.05)

    def test_density_irregular(self, nyx):
        # Lognormal collapse: heavy positive tail (max >> mean).
        d = nyx[0].patches("baryon_density")[0].data
        assert d.max() > 10 * d.mean()

    def test_temperature_positive_and_correlated(self, nyx):
        t = nyx[0].patches("temperature")[0].data
        d = nyx[0].patches("baryon_density")[0].data
        assert (t > 0).all()
        corr = np.corrcoef(np.log(t).ravel(), np.log(d).ravel())[0, 1]
        assert corr > 0.8  # polytropic relation

    def test_refinement_tracks_density(self, nyx):
        covered = nyx.covered_mask(0)
        d = nyx[0].patches("baryon_density")[0].data
        assert d[covered].mean() > d[~covered].mean()


class TestTimesteps:
    def test_three_steps(self):
        steps = nyx_timesteps(config=NyxConfig(coarse_n=16))
        assert len(steps) == 3

    def test_structure_sharpens(self):
        steps = nyx_timesteps(config=NyxConfig(coarse_n=16))
        maxima = [s[0].patches("baryon_density")[0].data.max() for s in steps]
        assert maxima[0] < maxima[1] < maxima[2]
