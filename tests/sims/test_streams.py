"""Tests for the lazy step generators feeding the in-situ writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.sims import NyxConfig, WarpXConfig, nyx_step_stream, warpx_step_stream


class TestNyxStream:
    def test_lazy_and_indexed(self):
        stream = nyx_step_stream(4, NyxConfig(coarse_n=8))
        first = next(stream)
        assert first.index == 0 and first.time == pytest.approx(0.3)
        rest = list(stream)
        assert [s.index for s in rest] == [1, 2, 3]
        assert rest[-1].time == pytest.approx(1.0)

    def test_growth_sharpens_structure(self):
        steps = list(nyx_step_stream(3, NyxConfig(coarse_n=8)))
        # Lognormal collapse: later steps are spikier (higher max density).
        peaks = [
            s.hierarchy[1].patches("baryon_density")[0].data.max() for s in steps
        ]
        assert peaks[0] < peaks[-1]

    def test_same_phases_across_steps(self):
        a, b = list(nyx_step_stream(2, NyxConfig(coarse_n=8)))
        da = a.hierarchy[0].patches("baryon_density")[0].data
        db = b.hierarchy[0].patches("baryon_density")[0].data
        # Same realization, different growth: strongly correlated fields.
        corr = np.corrcoef(np.log(da).ravel(), np.log(db).ravel())[0, 1]
        assert corr > 0.9

    def test_single_step(self):
        (only,) = list(nyx_step_stream(1, NyxConfig(coarse_n=8)))
        assert only.index == 0 and only.time == pytest.approx(1.0)

    def test_bad_length_rejected(self):
        with pytest.raises(ReproError):
            list(nyx_step_stream(0))


class TestWarpXStream:
    def test_noise_accumulates(self):
        cfg = WarpXConfig(nx=8, nz=32)
        steps = list(warpx_step_stream(3, cfg))
        assert [s.index for s in steps] == [0, 1, 2]
        # Different seeds + rising noise level: steps differ but share the
        # analytic wakefield backbone.
        e0 = steps[0].hierarchy[1].patches("Ez")[0].data
        e2 = steps[2].hierarchy[1].patches("Ez")[0].data
        assert e0.shape == e2.shape
        assert not np.array_equal(e0, e2)
        assert np.corrcoef(e0.ravel(), e2.ravel())[0, 1] > 0.8
