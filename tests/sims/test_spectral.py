"""Tests for spectral field synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.sims import gaussian_random_field, smooth_field, wavenumber_grid, zeldovich_velocity


class TestWavenumbers:
    def test_dc_zero(self):
        k = wavenumber_grid((8, 8, 8))
        assert k[0, 0, 0] == 0.0

    def test_symmetry(self):
        k = wavenumber_grid((8, 8))
        assert k[1, 0] == pytest.approx(k[-1, 0])

    def test_too_small_rejected(self):
        with pytest.raises(ReproError):
            wavenumber_grid((1, 8))


class TestGRF:
    def test_normalization(self):
        f = gaussian_random_field((32, 32, 32), seed=0)
        assert f.mean() == pytest.approx(0.0, abs=1e-12)
        assert f.std() == pytest.approx(1.0, abs=1e-12)

    def test_deterministic_in_seed(self):
        a = gaussian_random_field((16, 16), seed=5)
        b = gaussian_random_field((16, 16), seed=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = gaussian_random_field((16, 16), seed=1)
        b = gaussian_random_field((16, 16), seed=2)
        assert not np.allclose(a, b)

    def test_red_spectrum_smoother_than_blue(self):
        red = gaussian_random_field((64, 64), spectral_index=-3.0, seed=0)
        blue = gaussian_random_field((64, 64), spectral_index=0.0, seed=0)

        def roughness(f):
            return np.abs(np.diff(f, axis=0)).mean()

        assert roughness(red) < roughness(blue)

    def test_real_output(self):
        f = gaussian_random_field((16, 16, 16), seed=3)
        assert f.dtype == np.float64


class TestSmoothing:
    def test_reduces_variance(self):
        f = gaussian_random_field((32, 32), spectral_index=0.0, seed=0)
        s = smooth_field(f, 2.0)
        assert s.std() < f.std()

    def test_zero_sigma_identity(self):
        f = gaussian_random_field((16, 16), seed=0)
        assert np.allclose(smooth_field(f, 0.0), f)

    def test_mean_preserved(self):
        f = gaussian_random_field((32, 32), seed=0) + 5.0
        assert smooth_field(f, 3.0).mean() == pytest.approx(5.0)


class TestZeldovich:
    def test_component_count(self):
        delta = gaussian_random_field((16, 16, 16), seed=0)
        vel = zeldovich_velocity(delta)
        assert len(vel) == 3
        assert all(v.shape == delta.shape for v in vel)

    def test_velocity_divergence_tracks_density(self):
        # div(v) = -delta for the Zel'dovich construction (spectrally).
        delta = gaussian_random_field((32, 32, 32), seed=1)
        vel = zeldovich_velocity(delta, box_size=32.0)
        div = np.zeros_like(delta)
        for axis, v in enumerate(vel):
            div += np.gradient(v, 32.0 / 32, axis=axis)
        # Correlation (not equality: finite differences vs spectral).
        corr = np.corrcoef(div.ravel(), -delta.ravel())[0, 1]
        assert corr > 0.8

    def test_zero_mean_velocities(self):
        delta = gaussian_random_field((16, 16, 16), seed=2)
        for v in zeldovich_velocity(delta):
            assert v.mean() == pytest.approx(0.0, abs=1e-12)
