"""Tests for the WarpX-like workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sims import WarpXConfig, warpx_hierarchy
from repro.sims.warpx import WARPX_FIELDS


@pytest.fixture(scope="module")
def warpx():
    return warpx_hierarchy(WarpXConfig(nx=8, nz=64, seed=0))


class TestStructure:
    def test_elongated_domain(self, warpx):
        assert warpx.grid_shape(0) == (8, 8, 64)
        assert warpx.grid_shape(1) == (16, 16, 128)

    def test_fields(self, warpx):
        assert set(warpx.field_names) == set(WARPX_FIELDS)

    def test_fine_fraction_near_table1(self):
        h = warpx_hierarchy(WarpXConfig(nx=16, nz=128, seed=1))
        assert abs(h.densities()[1] - 0.086) < 0.05

    def test_deterministic(self):
        a = warpx_hierarchy(WarpXConfig(nx=8, nz=64, seed=2))
        b = warpx_hierarchy(WarpXConfig(nx=8, nz=64, seed=2))
        assert np.array_equal(
            a[1].patches("Ez")[0].data, b[1].patches("Ez")[0].data
        )

    def test_too_small_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            warpx_hierarchy(WarpXConfig(nx=4, nz=8))


class TestPhysics:
    def test_ez_smooth(self, warpx):
        # Smoothness: one-cell differences small relative to the range.
        ez = warpx[0].patches("Ez")[0].data
        jump = max(np.abs(np.diff(ez, axis=a)).max() for a in range(3))
        assert jump < 0.5 * (ez.max() - ez.min())

    def test_smoother_than_nyx(self, warpx):
        from repro.sims import NyxConfig, nyx_hierarchy

        nyx = nyx_hierarchy(NyxConfig(coarse_n=16, seed=0))

        def norm_rough(f):
            return np.abs(np.diff(f, axis=2)).mean() / (np.abs(f).mean() + 1e-12)

        ez = warpx[0].patches("Ez")[0].data
        rho = nyx[0].patches("baryon_density")[0].data
        assert norm_rough(ez) < norm_rough(rho)

    def test_refined_region_around_beam(self, warpx):
        covered = warpx.covered_mask(0)
        ez = warpx[0].patches("Ez")[0].data
        energy = ez**2
        assert energy[covered].mean() > energy[~covered].mean()

    def test_pulse_located_late_z(self, warpx):
        ez = warpx[0].patches("Ez")[0].data
        profile = np.abs(ez).max(axis=(0, 1))
        assert profile.argmax() > ez.shape[2] // 2
