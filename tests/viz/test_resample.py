"""Tests for cell->vertex re-sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.viz import cell_to_vertex


class TestBasics:
    def test_output_shape(self):
        out = cell_to_vertex(np.zeros((4, 5, 6)))
        assert out.shape == (5, 6, 7)

    def test_paper_figure4_example_1d(self):
        # Figure 14's vertex values: interior vertex = mean of 2 neighbors.
        out = cell_to_vertex(np.array([1.0, 1.0, 1.0, 4.0, 4.0, 4.0, 7.0, 7.0, 7.0]))
        assert out.tolist() == [1.0, 1.0, 1.0, 2.5, 4.0, 4.0, 5.5, 7.0, 7.0, 7.0]

    def test_2d_interior_vertex_averages_4_cells(self):
        cells = np.array([[8.0, 6.0], [6.0, 4.0]])
        out = cell_to_vertex(cells)
        assert out[1, 1] == pytest.approx(6.0)  # the paper's Figure 4 value

    def test_corner_vertex_copies_cell(self):
        cells = np.array([[3.0, 0.0], [0.0, 0.0]])
        assert cell_to_vertex(cells)[0, 0] == 3.0

    def test_edge_vertex_averages_2(self):
        cells = np.array([[2.0, 4.0], [0.0, 0.0]])
        assert cell_to_vertex(cells)[0, 1] == pytest.approx(3.0)

    def test_constant_field_preserved(self):
        out = cell_to_vertex(np.full((5, 5), 7.0))
        assert np.allclose(out, 7.0)

    def test_mean_preserved_globally(self):
        rng = np.random.default_rng(0)
        cells = rng.normal(size=(20, 20, 20))
        out = cell_to_vertex(cells)
        assert out.mean() == pytest.approx(cells.mean(), abs=0.05)


class TestNaNHandling:
    def test_nan_cells_ignored(self):
        cells = np.array([[1.0, np.nan], [3.0, np.nan]])
        out = cell_to_vertex(cells)
        # Vertex between the two valid cells.
        assert out[1, 0] == pytest.approx(2.0)
        # Vertex adjacent to one valid and one NaN cell uses the valid one.
        assert out[0, 1] == 1.0

    def test_fully_invalid_vertex_nan(self):
        cells = np.full((3, 3), np.nan)
        assert np.isnan(cell_to_vertex(cells)).all()

    def test_nan_island(self):
        cells = np.ones((5, 5))
        cells[2, 2] = np.nan
        out = cell_to_vertex(cells)
        assert np.isfinite(out).all()
        assert np.allclose(out, 1.0)

    def test_smoothing_reduces_block_steps(self):
        # The §4.3 mechanism: resampling shrinks block-artifact RMSE.
        ramp = np.arange(27.0)
        blocky = ramp.copy()
        for s in range(0, 27, 3):
            blocky[s : s + 3] = blocky[s : s + 3].mean()
        v_orig = cell_to_vertex(ramp)
        v_blocky = cell_to_vertex(blocky)
        rmse_cells = np.sqrt(np.mean((blocky - ramp) ** 2))
        rmse_verts = np.sqrt(np.mean((v_blocky - v_orig) ** 2))
        assert rmse_verts < rmse_cells
