"""Tests for dual-cell extraction and the gap fixes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.viz import dual_isosurface, marching_cubes, redundant_ring_mask, stitch_contours_2d
from repro.errors import VisualizationError


class TestDualCell:
    def test_matches_shifted_marching_cubes(self, rng):
        cells = rng.normal(size=(10, 10, 10))
        a = dual_isosurface(cells, 0.0, spacing=1.0, origin=(0, 0, 0))
        b = marching_cubes(cells, 0.0, spacing=1.0, origin=(0.5, 0.5, 0.5))
        assert a.n_faces == b.n_faces
        assert np.allclose(np.sort(a.vertices, axis=0), np.sort(b.vertices, axis=0))

    def test_sphere_vertex_positions_at_cell_centers_lattice(self):
        n = 20
        ax = (np.arange(n) + 0.5) * (2.0 / n) - 1.0
        x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
        cells = np.sqrt(x * x + y * y + z * z)
        mesh = dual_isosurface(cells, 0.6, spacing=2.0 / n, origin=(-1, -1, -1))
        assert mesh.is_closed()
        radii = np.linalg.norm(mesh.vertices, axis=1)
        assert np.abs(radii - 0.6).max() < 0.05

    def test_dual_grid_smaller_than_resampled(self, rng):
        # Dual surface of a box-clipped field is inset by half a cell.
        cells = np.broadcast_to(np.arange(8.0)[:, None, None], (8, 8, 8)).copy()
        mesh = dual_isosurface(cells, 3.5, spacing=1.0)
        lo, hi = mesh.bounds()
        assert lo[1] == pytest.approx(0.5)
        assert hi[1] == pytest.approx(7.5)


class TestRedundantRing:
    def test_extends_one_ring(self):
        exposed = np.zeros((8, 8), dtype=bool)
        exposed[:4] = True
        covered = ~exposed
        keep = redundant_ring_mask(exposed, covered, rings=1)
        assert keep[:5].all()
        assert not keep[5:].any()

    def test_rings_two(self):
        exposed = np.zeros((8, 8), dtype=bool)
        exposed[:3] = True
        keep = redundant_ring_mask(exposed, ~exposed, rings=2)
        assert keep[:5].all() and not keep[5:].any()

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(VisualizationError):
            redundant_ring_mask(np.zeros((2, 2), bool), np.zeros((3, 3), bool))

    def test_no_covered_identity(self):
        exposed = np.ones((4, 4), dtype=bool)
        keep = redundant_ring_mask(exposed, np.zeros((4, 4), bool))
        assert keep.all()


class TestStitch2D:
    def test_pairs_nearest_endpoints(self):
        fine = np.array([[0.0, 0.0], [1.0, 0.0]])
        coarse = np.array([[0.1, 0.3], [1.1, 0.3]])
        segs = stitch_contours_2d(fine, coarse, max_span=1.0)
        assert len(segs) == 2
        # Each fine endpoint matched to its nearest coarse endpoint.
        assert np.allclose(segs[:, 0].min(axis=0), [0.0, 0.0])

    def test_max_span_limits(self):
        fine = np.array([[0.0, 0.0]])
        coarse = np.array([[5.0, 0.0]])
        assert len(stitch_contours_2d(fine, coarse, max_span=1.0)) == 0

    def test_empty_inputs(self):
        assert stitch_contours_2d(np.empty((0, 2)), np.zeros((2, 2)), 1.0).shape == (0, 2, 2)

    def test_no_double_matching(self):
        fine = np.array([[0.0, 0.0], [0.2, 0.0]])
        coarse = np.array([[0.1, 0.1]])
        segs = stitch_contours_2d(fine, coarse, max_span=1.0)
        assert len(segs) == 1  # single coarse endpoint used once
