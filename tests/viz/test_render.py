"""Tests for the software renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VisualizationError
from repro.viz import TriangleMesh, marching_cubes, render_mesh


def big_quad(depth: float, shade_offset: float = 0.0) -> TriangleMesh:
    verts = np.array(
        [[depth, 0, 0], [depth, 10, 0], [depth, 10, 10], [depth, 0, 10]], dtype=float
    )
    faces = np.array([[0, 1, 2], [0, 2, 3]])
    return TriangleMesh(verts, faces)


class TestBasics:
    def test_empty_mesh_background(self):
        img = render_mesh(TriangleMesh.empty(), size=(32, 32), background=0.25)
        assert (img == 0.25).all()

    def test_quad_covers_image(self):
        img = render_mesh(big_quad(1.0), axis=0, size=(32, 32))
        assert (img > 0).mean() > 0.9

    def test_image_range(self):
        img = render_mesh(big_quad(1.0), axis=0, size=(16, 16))
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_determinism(self):
        a = render_mesh(big_quad(1.0), size=(32, 32))
        b = render_mesh(big_quad(1.0), size=(32, 32))
        assert np.array_equal(a, b)

    def test_view_axes(self):
        n = 16
        ax = np.linspace(-1, 1, n)
        x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
        mesh = marching_cubes(np.sqrt(x * x + y * y + z * z), 0.6)
        for axis in (0, 1, 2):
            img = render_mesh(mesh, axis=axis, size=(48, 48))
            assert (img > 0).sum() > 100


class TestZBuffer:
    def test_nearer_surface_wins(self):
        # Camera looks along +x from above: larger x is nearer.
        near = big_quad(5.0)
        far = big_quad(1.0)
        # Tilt the far quad so its shade differs.
        v = far.vertices.copy()
        v[:, 0] += 0.3 * v[:, 1]
        far_tilted = TriangleMesh(v, far.faces)
        img_near_only = render_mesh(near, axis=0, size=(32, 32))
        both = TriangleMesh.merge([far_tilted, near])
        img_both = render_mesh(both, axis=0, size=(32, 32), bounds=near.bounds())
        # The near flat quad hides the tilted one almost everywhere.
        assert np.abs(img_both - img_near_only).mean() < 0.05


class TestBoundsAndShading:
    def test_fixed_bounds_framing(self):
        mesh = big_quad(1.0)
        lo = np.array([0.0, -10.0, -10.0])
        hi = np.array([2.0, 20.0, 20.0])
        img = render_mesh(mesh, axis=0, size=(64, 64), bounds=(lo, hi))
        # Mesh occupies roughly the central third of the frame.
        cover = (img > 0).mean()
        assert 0.05 < cover < 0.35

    def test_flat_quad_uniform_shade(self):
        img = render_mesh(big_quad(1.0), axis=0, size=(32, 32))
        vals = img[img > 0]
        assert vals.std() < 1e-12

    def test_ambient_floor(self):
        img = render_mesh(big_quad(1.0), axis=0, size=(16, 16), ambient=0.5)
        assert img[img > 0].min() >= 0.5


class TestValidation:
    def test_bad_axis(self):
        with pytest.raises(VisualizationError):
            render_mesh(big_quad(1.0), axis=3)

    def test_tiny_image(self):
        with pytest.raises(VisualizationError):
            render_mesh(big_quad(1.0), size=(1, 10))
