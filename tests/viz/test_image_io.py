"""Tests for PGM image I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FormatError
from repro.viz import read_pgm, write_pgm


class TestRoundtrip:
    def test_float_image(self, tmp_path, rng):
        img = rng.random((17, 23))
        path = write_pgm(tmp_path / "a.pgm", img)
        back = read_pgm(path)
        assert back.shape == img.shape
        assert np.abs(back / 255.0 - img).max() <= 0.5 / 255 + 1e-9

    def test_uint8_exact(self, tmp_path, rng):
        img = rng.integers(0, 256, size=(8, 9), dtype=np.uint8)
        back = read_pgm(write_pgm(tmp_path / "b.pgm", img))
        assert np.array_equal(back, img)

    def test_clipping(self, tmp_path):
        img = np.array([[-1.0, 2.0]])
        back = read_pgm(write_pgm(tmp_path / "c.pgm", img))
        assert back[0, 0] == 0 and back[0, 1] == 255

    def test_creates_directories(self, tmp_path):
        path = write_pgm(tmp_path / "x" / "y" / "z.pgm", np.zeros((2, 2)))
        assert path.is_file()


class TestValidation:
    def test_3d_rejected(self, tmp_path):
        with pytest.raises(FormatError):
            write_pgm(tmp_path / "bad.pgm", np.zeros((2, 2, 2)))

    def test_bad_dtype_rejected(self, tmp_path):
        with pytest.raises(FormatError):
            write_pgm(tmp_path / "bad.pgm", np.zeros((2, 2), dtype=np.int32))

    def test_read_non_pgm(self, tmp_path):
        p = tmp_path / "junk.pgm"
        p.write_bytes(b"JPEG....")
        with pytest.raises(FormatError):
            read_pgm(p)

    def test_truncated_data(self, tmp_path):
        p = write_pgm(tmp_path / "t.pgm", np.zeros((10, 10)))
        raw = p.read_bytes()
        p.write_bytes(raw[:-50])
        with pytest.raises(FormatError):
            read_pgm(p)
