"""Tests for the Figure 14 construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VisualizationError
from repro.viz import blocky_compress_1d, figure14_demo


class TestBlockyCompress:
    def test_paper_example(self):
        out = blocky_compress_1d(np.arange(9.0), 3)
        assert out.tolist() == [1, 1, 1, 4, 4, 4, 7, 7, 7]

    def test_block_one_identity(self):
        x = np.arange(5.0)
        assert np.array_equal(blocky_compress_1d(x, 1), x)

    def test_partial_trailing_block(self):
        out = blocky_compress_1d(np.array([0.0, 2.0, 10.0]), 2)
        assert out.tolist() == [1.0, 1.0, 10.0]

    def test_mean_preserved(self, rng):
        x = rng.normal(size=30)
        assert blocky_compress_1d(x, 5).mean() == pytest.approx(x.mean())

    def test_2d_rejected(self):
        with pytest.raises(VisualizationError):
            blocky_compress_1d(np.zeros((3, 3)), 2)

    def test_bad_block_rejected(self):
        with pytest.raises(VisualizationError):
            blocky_compress_1d(np.zeros(4), 0)


class TestDemo:
    def test_paper_values(self):
        demo = figure14_demo()
        assert demo.decompressed.tolist() == [1, 1, 1, 4, 4, 4, 7, 7, 7]
        assert demo.resampled.tolist() == [1, 1, 1, 2.5, 4, 4, 5.5, 7, 7, 7]

    def test_resampling_smooths(self):
        demo = figure14_demo()
        assert demo.resampled_rmse < demo.dual_cell_rmse

    def test_smoothing_holds_generally(self):
        for n, block in ((30, 5), (64, 4), (100, 10)):
            demo = figure14_demo(n, block)
            assert demo.resampled_rmse <= demo.dual_cell_rmse
