"""Tests for 2-D marching squares."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VisualizationError
from repro.viz import contour_length, marching_squares


class TestBasics:
    def test_circle_contour_length(self):
        n = 64
        ax = np.linspace(-1, 1, n)
        x, y = np.meshgrid(ax, ax, indexing="ij")
        field = np.sqrt(x * x + y * y)
        segs = marching_squares(field, 0.5, spacing=2 / (n - 1), origin=(-1, -1))
        assert contour_length(segs) == pytest.approx(2 * np.pi * 0.5, rel=0.02)

    def test_vertical_line_position(self):
        field = np.broadcast_to(np.arange(6.0)[:, None], (6, 6)).copy()
        segs = marching_squares(field, 2.5)
        assert np.allclose(segs[:, :, 0], 2.5)

    def test_no_crossing_empty(self):
        segs = marching_squares(np.zeros((4, 4)), 1.0)
        assert segs.shape == (0, 2, 2)

    def test_closed_loop_endpoints_chain(self):
        # Each segment endpoint of a closed contour appears exactly twice.
        n = 24
        ax = np.linspace(-1, 1, n)
        x, y = np.meshgrid(ax, ax, indexing="ij")
        segs = marching_squares(np.sqrt(x * x + y * y), 0.6, spacing=2 / (n - 1), origin=(-1, -1))
        pts = np.round(segs.reshape(-1, 2), 9)
        _, counts = np.unique(pts, axis=0, return_counts=True)
        assert (counts == 2).all()

    def test_ambiguous_case_separates_positives(self):
        # Checkerboard corners: positives on one diagonal -> 2 segments.
        field = np.array([[1.0, -1.0], [-1.0, 1.0]])
        segs = marching_squares(field, 0.0)
        assert len(segs) == 2

    def test_nan_cell_skipped(self):
        field = np.broadcast_to(np.arange(5.0)[:, None], (5, 5)).copy()
        field[2, 2] = np.nan
        segs = marching_squares(field, 2.5)
        assert len(segs) > 0
        assert np.isfinite(segs).all()

    def test_scaling_and_origin(self):
        field = np.broadcast_to(np.arange(4.0)[:, None], (4, 4)).copy()
        segs = marching_squares(field, 1.5, spacing=(2.0, 1.0), origin=(5.0, 0.0))
        assert np.allclose(segs[:, :, 0], 5.0 + 1.5 * 2.0)


class TestValidation:
    def test_3d_rejected(self):
        with pytest.raises(VisualizationError):
            marching_squares(np.zeros((3, 3, 3)), 0.0)

    def test_tiny_rejected(self):
        with pytest.raises(VisualizationError):
            marching_squares(np.zeros((1, 5)), 0.0)

    def test_contour_length_empty(self):
        assert contour_length(np.empty((0, 2, 2))) == 0.0
