"""Tests for crack/gap metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MetricError
from repro.viz import (
    TriangleMesh,
    crack_report,
    interface_gap,
    interior_boundary_edges,
    resampling_isosurface,
)

from tests.conftest import make_sphere_hierarchy


def open_quad_at(x: float) -> TriangleMesh:
    # Quad spans [2, 3] in y/z so none of its edges touch the domain faces.
    verts = np.array([[x, 2, 2], [x, 3, 2], [x, 3, 3], [x, 2, 3]], dtype=float)
    faces = np.array([[0, 1, 2], [0, 2, 3]])
    return TriangleMesh(verts, faces)


class TestInteriorBoundaryEdges:
    def test_interior_open_edges_found(self):
        mesh = open_quad_at(5.0)
        lo = np.zeros(3)
        hi = np.full(3, 10.0)
        edges = interior_boundary_edges(mesh, lo, hi, tol=0.1)
        assert len(edges) == 4

    def test_edges_on_domain_faces_excluded(self):
        # A quad whose open edges lie exactly on the y/z domain faces.
        verts = np.array([[5.0, 0, 0], [5.0, 10, 0], [5.0, 10, 10], [5.0, 0, 10]])
        faces = np.array([[0, 1, 2], [0, 2, 3]])
        mesh = TriangleMesh(verts, faces)
        edges = interior_boundary_edges(mesh, np.zeros(3), np.full(3, 10.0), tol=0.1)
        assert len(edges) == 0

    def test_closed_mesh_none(self):
        verts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
        faces = np.array([[0, 2, 1], [0, 1, 3], [0, 3, 2], [1, 2, 3]])
        mesh = TriangleMesh(verts, faces)
        assert len(interior_boundary_edges(mesh, np.zeros(3) - 5, np.zeros(3) + 5, 0.1)) == 0


class TestInterfaceGap:
    def test_distance_between_parallel_quads(self):
        a = open_quad_at(5.0)
        b = open_quad_at(5.3)
        lo, hi = np.zeros(3), np.full(3, 10.0)
        mean_d, max_d = interface_gap(a, b, lo, hi, tol=0.1)
        # Surface sampling is sparse (vertices + centroids), so distances
        # exceed the 0.3 plane separation but stay within one quad edge.
        assert 0.3 <= mean_d <= 0.8
        assert max_d <= 1.0

    def test_empty_other_mesh(self):
        a = open_quad_at(5.0)
        lo, hi = np.zeros(3), np.full(3, 10.0)
        assert interface_gap(a, TriangleMesh.empty(), lo, hi, 0.1) == (0.0, 0.0)

    def test_no_open_edges(self):
        verts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float) + 3.0
        faces = np.array([[0, 2, 1], [0, 1, 3], [0, 3, 2], [1, 2, 3]])
        closed = TriangleMesh(verts, faces)
        lo, hi = np.zeros(3), np.full(3, 10.0)
        assert interface_gap(closed, open_quad_at(5.0), lo, hi, 0.1) == (0.0, 0.0)


class TestCrackReport:
    def test_level_count_checked(self):
        h = make_sphere_hierarchy(8)
        res = resampling_isosurface(h, "f", 0.55)
        res.level_meshes.pop()
        with pytest.raises(MetricError):
            crack_report(res, h)

    def test_is_sealed(self):
        h = make_sphere_hierarchy(8)
        res = resampling_isosurface(h, "f", 0.55)
        report = crack_report(res, h)
        assert report.is_sealed(gap_tolerance=10.0)
        assert not report.is_sealed(gap_tolerance=0.0) or report.open_edge_count == 0

    def test_open_edge_length_positive_with_cracks(self):
        h = make_sphere_hierarchy(16)
        report = crack_report(resampling_isosurface(h, "f", 0.55), h)
        if report.open_edge_count:
            assert report.open_edge_length > 0
