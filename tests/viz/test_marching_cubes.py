"""Tests for the vectorized marching cubes extractor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import VisualizationError
from repro.viz import marching_cubes


def sphere_field(n: int = 24, radius: float = 0.6):
    ax = np.linspace(-1, 1, n)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    return np.sqrt(x * x + y * y + z * z), 2.0 / (n - 1)


class TestClosedSurfaces:
    def test_sphere_closed_euler_2(self):
        field, dx = sphere_field()
        mesh = marching_cubes(field, 0.6, spacing=dx, origin=(-1, -1, -1))
        assert mesh.n_faces > 100
        assert mesh.is_closed()
        assert mesh.euler_characteristic() == 2

    def test_sphere_area_converges(self):
        field, dx = sphere_field(40, 0.6)
        mesh = marching_cubes(field, 0.6, spacing=2.0 / 39, origin=(-1, -1, -1))
        assert mesh.area() == pytest.approx(4 * np.pi * 0.36, rel=0.02)

    def test_torus_euler_0(self):
        n = 32
        ax = np.linspace(-1, 1, n)
        x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
        field = (np.sqrt(x * x + y * y) - 0.6) ** 2 + z * z
        mesh = marching_cubes(field, 0.25**2, spacing=2 / (n - 1), origin=(-1, -1, -1))
        assert mesh.is_closed()
        assert mesh.euler_characteristic() == 0

    def test_two_spheres_two_components(self):
        n = 32
        ax = np.linspace(-1, 1, n)
        x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
        d1 = np.sqrt((x + 0.5) ** 2 + y**2 + z**2)
        d2 = np.sqrt((x - 0.5) ** 2 + y**2 + z**2)
        mesh = marching_cubes(np.minimum(d1, d2), 0.3)
        assert mesh.is_closed()
        assert mesh.euler_characteristic() == 4  # 2 + 2


class TestGeometry:
    def test_plane_iso_position(self):
        # Field = x coordinate; iso surface at x = 2.25 exactly.
        field = np.broadcast_to(np.arange(8.0)[:, None, None], (8, 8, 8)).copy()
        mesh = marching_cubes(field, 2.25)
        assert mesh.n_faces > 0
        assert np.allclose(mesh.vertices[:, 0], 2.25)

    def test_spacing_and_origin(self):
        field = np.broadcast_to(np.arange(8.0)[:, None, None], (8, 8, 8)).copy()
        mesh = marching_cubes(field, 3.5, spacing=(2.0, 1.0, 1.0), origin=(10.0, 0.0, 0.0))
        assert np.allclose(mesh.vertices[:, 0], 10.0 + 3.5 * 2.0)

    def test_orientation_consistent(self):
        field, dx = sphere_field()
        mesh = marching_cubes(field, 0.6, spacing=dx, origin=(-1, -1, -1))
        # Normals should point outward (same side as vertex position).
        normals = mesh.face_normals()
        centers = mesh.vertices[mesh.faces].mean(axis=1)
        dots = (normals * centers).sum(axis=1)
        frac_outward = (dots > 0).mean()
        assert frac_outward > 0.99 or frac_outward < 0.01  # uniformly oriented

    def test_no_iso_crossing_empty(self):
        mesh = marching_cubes(np.zeros((4, 4, 4)), 1.0)
        assert mesh.is_empty()


class TestMasking:
    def test_nan_region_skipped(self):
        field, dx = sphere_field()
        field[12:] = np.nan
        mesh = marching_cubes(field, 0.6)
        assert mesh.n_faces > 0
        assert len(mesh.boundary_edges()) > 0  # cut open
        assert np.isfinite(mesh.vertices).all()

    def test_cell_mask(self):
        field, _ = sphere_field(16)
        mask = np.zeros((15, 15, 15), dtype=bool)
        mask[:8] = True
        mesh = marching_cubes(field, 0.6, cell_mask=mask)
        full = marching_cubes(field, 0.6)
        assert 0 < mesh.n_faces < full.n_faces

    def test_bad_mask_shape(self):
        field, _ = sphere_field(8)
        with pytest.raises(VisualizationError):
            marching_cubes(field, 0.5, cell_mask=np.ones((3, 3, 3), dtype=bool))

    def test_all_nan_empty(self):
        mesh = marching_cubes(np.full((5, 5, 5), np.nan), 0.0)
        assert mesh.is_empty()


class TestValidation:
    def test_2d_rejected(self):
        with pytest.raises(VisualizationError):
            marching_cubes(np.zeros((4, 4)), 0.0)

    def test_too_small_rejected(self):
        with pytest.raises(VisualizationError):
            marching_cubes(np.zeros((1, 4, 4)), 0.0)

    def test_bad_spacing_rejected(self):
        with pytest.raises(VisualizationError):
            marching_cubes(np.zeros((4, 4, 4)), 0.0, spacing=(1.0, 2.0))


class TestWatertightProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_smooth_fields_closed_or_domain_bounded(self, seed):
        rng = np.random.default_rng(seed)
        # Smooth random field via low-order Fourier modes.
        n = 12
        ax = np.linspace(0, 2 * np.pi, n)
        x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
        field = np.zeros((n, n, n))
        for _ in range(4):
            kx, ky, kz = rng.integers(1, 3, size=3)
            field += rng.normal() * np.sin(kx * x + rng.uniform(0, 6)) * np.sin(
                ky * y + rng.uniform(0, 6)
            ) * np.sin(kz * z + rng.uniform(0, 6))
        mesh = marching_cubes(field, 0.0)
        if mesh.is_empty():
            return
        # Every boundary edge must lie on the domain boundary: the surface
        # is watertight inside.
        edges = mesh.boundary_edges()
        if len(edges):
            mids = 0.5 * (mesh.vertices[edges[:, 0]] + mesh.vertices[edges[:, 1]])
            on_boundary = np.zeros(len(mids), dtype=bool)
            for axis in range(3):
                on_boundary |= np.isclose(mids[:, axis], 0.0)
                on_boundary |= np.isclose(mids[:, axis], n - 1.0)
            assert on_boundary.all()
