"""Tests for colormap application and PPM output."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FormatError
from repro.viz import apply_colormap, write_ppm


class TestColormap:
    def test_shape_and_dtype(self):
        rgb = apply_colormap(np.linspace(0, 1, 64).reshape(8, 8))
        assert rgb.shape == (8, 8, 3)
        assert rgb.dtype == np.uint8

    def test_monotone_luminance(self):
        t = np.linspace(0, 1, 32).reshape(1, -1)
        rgb = apply_colormap(t).astype(float)[0]
        lum = 0.2126 * rgb[:, 0] + 0.7152 * rgb[:, 1] + 0.0722 * rgb[:, 2]
        assert (np.diff(lum) > -1.0).all()  # monotone up to 8-bit rounding
        assert lum[-1] > lum[0] + 100

    def test_out_of_range_clipped(self):
        rgb = apply_colormap(np.array([[-5.0, 5.0]]))
        assert np.array_equal(rgb[0, 0], apply_colormap(np.array([[0.0]]))[0, 0])
        assert np.array_equal(rgb[0, 1], apply_colormap(np.array([[1.0]]))[0, 0])

    def test_distinct_endpoints(self):
        lo = apply_colormap(np.array([[0.0]]))[0, 0]
        hi = apply_colormap(np.array([[1.0]]))[0, 0]
        assert not np.array_equal(lo, hi)


class TestPpm:
    def test_write_and_header(self, tmp_path):
        rgb = apply_colormap(np.random.default_rng(0).random((5, 7)))
        path = write_ppm(tmp_path / "img.ppm", rgb)
        raw = path.read_bytes()
        assert raw.startswith(b"P6\n7 5\n255\n")
        assert len(raw) == len(b"P6\n7 5\n255\n") + 5 * 7 * 3

    def test_bad_shape_rejected(self, tmp_path):
        with pytest.raises(FormatError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4), dtype=np.uint8))

    def test_bad_dtype_rejected(self, tmp_path):
        with pytest.raises(FormatError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4, 3)))

    def test_creates_directories(self, tmp_path):
        rgb = np.zeros((2, 2, 3), dtype=np.uint8)
        assert write_ppm(tmp_path / "a" / "b.ppm", rgb).is_file()
