"""Tests for volume rendering and slicing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VisualizationError
from repro.viz import max_intensity_projection, normalize_field, slice_image, volume_render


@pytest.fixture
def blob_field():
    ax = np.linspace(-1, 1, 24)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    return np.exp(-4 * (x * x + y * y + z * z))


class TestNormalize:
    def test_unit_range(self, blob_field):
        out = normalize_field(blob_field)
        assert out.min() == 0.0 and out.max() == 1.0

    def test_fixed_range_clips(self):
        out = normalize_field(np.array([-1.0, 0.5, 2.0]), lo=0.0, hi=1.0)
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_degenerate_range(self):
        out = normalize_field(np.full(4, 3.0))
        assert (out == 0.0).all()


class TestSlice:
    def test_middle_slice_default(self, blob_field):
        s = slice_image(blob_field, axis=0)
        assert s.shape == (24, 24)
        assert np.array_equal(s, blob_field[12])

    def test_explicit_index_and_axis(self, blob_field):
        s = slice_image(blob_field, axis=2, index=3)
        assert np.array_equal(s, blob_field[:, :, 3])

    def test_out_of_range_rejected(self, blob_field):
        with pytest.raises(VisualizationError):
            slice_image(blob_field, index=100)

    def test_bad_axis_rejected(self, blob_field):
        with pytest.raises(VisualizationError):
            slice_image(blob_field, axis=3)

    def test_returns_copy(self, blob_field):
        s = slice_image(blob_field)
        s[0, 0] = 99.0
        assert blob_field[12, 0, 0] != 99.0


class TestMIP:
    def test_shape(self, blob_field):
        assert max_intensity_projection(blob_field, axis=1).shape == (24, 24)

    def test_value_is_max(self, blob_field):
        mip = max_intensity_projection(blob_field, axis=0)
        assert mip.max() == pytest.approx(blob_field.max())

    def test_center_brightest(self, blob_field):
        mip = max_intensity_projection(blob_field, axis=0)
        i, j = np.unravel_index(mip.argmax(), mip.shape)
        # 24 samples have no exact center; either straddling index is fine.
        assert i in (11, 12) and j in (11, 12)


class TestVolumeRender:
    def test_range_and_shape(self, blob_field):
        img = volume_render(normalize_field(blob_field), axis=0)
        assert img.shape == (24, 24)
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_blob_renders_bright_center(self, blob_field):
        img = volume_render(normalize_field(blob_field), axis=2)
        assert img[12, 12] > img[0, 0]

    def test_empty_volume_black(self):
        img = volume_render(np.zeros((8, 8, 8)))
        assert (img == 0.0).all()

    def test_unnormalized_rejected(self, blob_field):
        with pytest.raises(VisualizationError):
            volume_render(blob_field * 10)

    def test_bad_opacity_rejected(self, blob_field):
        with pytest.raises(VisualizationError):
            volume_render(normalize_field(blob_field), opacity_scale=0.0)

    def test_opacity_monotone_occlusion(self, blob_field):
        # Higher opacity: front material hides the back -> image changes.
        norm = normalize_field(blob_field)
        a = volume_render(norm, opacity_scale=1.0)
        b = volume_render(norm, opacity_scale=50.0)
        assert not np.allclose(a, b)


class TestSensitivityOrdering:
    def test_isosurface_more_sensitive_than_volume_rendering(self, rng):
        """The paper's §3.1 premise, in miniature."""
        from repro.metrics import r_ssim
        from repro.viz import marching_cubes, render_mesh

        ax = np.linspace(-1, 1, 32)
        x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
        field = np.exp(-3 * (x * x + y * y + z * z)) + 0.05 * np.sin(8 * x) * np.sin(7 * y)
        noisy = field + 0.01 * rng.normal(size=field.shape)
        lo, hi = field.min(), field.max()

        vr_a = volume_render(normalize_field(field, lo, hi))
        vr_b = volume_render(normalize_field(noisy, lo, hi))
        vr_delta = r_ssim(vr_a, vr_b, data_range=1.0)

        iso = 0.5
        mesh_a = marching_cubes(field, iso)
        mesh_b = marching_cubes(noisy, iso)
        bounds = (np.zeros(3), np.full(3, 31.0))
        iso_a = render_mesh(mesh_a, size=(64, 64), bounds=bounds)
        iso_b = render_mesh(mesh_b, size=(64, 64), bounds=bounds)
        iso_delta = r_ssim(iso_a, iso_b, data_range=1.0)

        assert iso_delta > vr_delta
