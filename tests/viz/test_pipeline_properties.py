"""Property tests for the AMR iso-surface pipelines.

Across randomly generated two-level hierarchies (random refinement
placement, random smooth fields) the pipelines must uphold structural
invariants: surfaces stay inside the domain, level meshes never overlap in
*volume* coverage for re-sampling (exposed regions are disjoint), and the
redundant-data fix never increases the interface gap.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.amr import AMRHierarchy, AMRLevel, Box, BoxArray, Patch
from repro.viz import crack_report, dual_cell_isosurface, resampling_isosurface


def _random_hierarchy(seed: int) -> tuple[AMRHierarchy, float]:
    rng = np.random.default_rng(seed)
    n = 12
    dom = Box.from_shape((n, n, n))
    dx0 = 1.0 / n
    # Smooth random field from a few Fourier modes, sampled at cell centers.
    def field(box: Box, dx: float) -> np.ndarray:
        axes = [(np.arange(box.lo[d], box.hi[d] + 1) + 0.5) * dx for d in range(3)]
        xx, yy, zz = np.meshgrid(*axes, indexing="ij")
        out = np.zeros_like(xx)
        rng2 = np.random.default_rng(seed + 1)
        for _ in range(3):
            kx, ky, kz = rng2.integers(1, 4, size=3)
            out += rng2.normal() * np.sin(
                2 * np.pi * (kx * xx + ky * yy + kz * zz) + rng2.uniform(0, 6)
            )
        return out

    l0 = AMRLevel(0, BoxArray([dom]), (dx0,) * 3, {"f": [Patch(dom, field(dom, dx0))]})
    # Random refined sub-box, aligned to even cells.
    lo = rng.integers(0, n // 2, size=3) // 2 * 2
    hi = lo + rng.integers(2, n // 2, size=3) // 2 * 2 + 1
    hi = np.minimum(hi, n - 1)
    fine_box = Box(tuple(lo), tuple(hi)).refine(2)
    l1 = AMRLevel(1, BoxArray([fine_box]), (dx0 / 2,) * 3, {"f": [Patch(fine_box, field(fine_box, dx0 / 2))]})
    h = AMRHierarchy(dom, [l0, l1], 2)
    return h, 0.0  # iso at zero (the field is zero-mean-ish)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_surfaces_stay_inside_domain(seed):
    h, iso = _random_hierarchy(seed)
    for result in (
        resampling_isosurface(h, "f", iso),
        dual_cell_isosurface(h, "f", iso, "redundant"),
    ):
        mesh = result.merged
        if mesh.is_empty():
            continue
        lo, hi = mesh.bounds()
        assert (lo >= -1e-9).all()
        assert (hi <= 1.0 + 1e-9).all()


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_redundant_fix_never_widens_gap(seed):
    h, iso = _random_hierarchy(seed)
    plain = dual_cell_isosurface(h, "f", iso, "none")
    fixed = dual_cell_isosurface(h, "f", iso, "redundant")
    if plain.n_faces == 0 or fixed.n_faces == 0:
        return
    gap_plain = crack_report(plain, h)
    gap_fixed = crack_report(fixed, h)
    assert gap_fixed.mean_gap <= gap_plain.mean_gap + 1e-9


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_resampling_coarse_mesh_avoids_fine_interior(seed):
    """Coarse-level surface must not intrude deep into the refined region
    (exposed-region masking), beyond the one-cell boundary band."""
    h, iso = _random_hierarchy(seed)
    result = resampling_isosurface(h, "f", iso)
    coarse = result.level_meshes[0]
    if coarse.is_empty():
        return
    fine_box = h[1].boxes[0].coarsen(2)
    dx0 = h[0].dx[0]
    inner_lo = (np.asarray(fine_box.lo) + 1) * dx0
    inner_hi = (np.asarray(fine_box.hi)) * dx0
    if (inner_hi <= inner_lo).any():
        return
    inside = np.all(
        (coarse.vertices > inner_lo + 1e-9) & (coarse.vertices < inner_hi - 1e-9), axis=1
    )
    assert not inside.any()
