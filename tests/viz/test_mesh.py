"""Tests for TriangleMesh."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VisualizationError
from repro.viz import TriangleMesh


def unit_quad() -> TriangleMesh:
    """Two triangles forming the unit square in z=0."""
    verts = np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]], dtype=float)
    faces = np.array([[0, 1, 2], [0, 2, 3]])
    return TriangleMesh(verts, faces)


def tetrahedron() -> TriangleMesh:
    verts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
    faces = np.array([[0, 2, 1], [0, 1, 3], [0, 3, 2], [1, 2, 3]])
    return TriangleMesh(verts, faces)


class TestConstruction:
    def test_shapes_validated(self):
        with pytest.raises(VisualizationError):
            TriangleMesh(np.zeros((3, 2)), np.zeros((1, 3), dtype=int))
        with pytest.raises(VisualizationError):
            TriangleMesh(np.zeros((3, 3)), np.zeros((1, 4), dtype=int))

    def test_out_of_range_faces(self):
        with pytest.raises(VisualizationError):
            TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 5]]))

    def test_empty(self):
        m = TriangleMesh.empty()
        assert m.is_empty()
        assert m.n_faces == 0
        assert m.area() == 0.0


class TestTopology:
    def test_quad_boundary(self):
        m = unit_quad()
        b = m.boundary_edges()
        assert len(b) == 4  # outer square edges; the diagonal is shared
        assert not m.is_closed()

    def test_tetrahedron_closed(self):
        m = tetrahedron()
        assert m.is_closed()
        assert len(m.boundary_edges()) == 0
        assert m.euler_characteristic() == 2

    def test_edge_lengths(self):
        m = unit_quad()
        lengths = m.edge_lengths()
        assert lengths.max() == pytest.approx(np.sqrt(2))
        assert sorted(lengths)[:4] == pytest.approx([1, 1, 1, 1])


class TestGeometry:
    def test_quad_area(self):
        assert unit_quad().area() == pytest.approx(1.0)

    def test_normals_unit_length(self):
        n = tetrahedron().face_normals()
        assert np.allclose(np.linalg.norm(n, axis=1), 1.0)

    def test_bounds(self):
        lo, hi = tetrahedron().bounds()
        assert np.array_equal(lo, [0, 0, 0])
        assert np.array_equal(hi, [1, 1, 1])

    def test_bounds_empty_rejected(self):
        with pytest.raises(VisualizationError):
            TriangleMesh.empty().bounds()

    def test_translate_scale(self):
        m = unit_quad().translated([1, 2, 3]).scaled(2.0)
        lo, hi = m.bounds()
        assert np.array_equal(lo, [2, 4, 6])
        assert np.array_equal(hi, [4, 6, 6])


class TestCleanup:
    def test_drop_degenerate(self):
        verts = np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0]], dtype=float)
        faces = np.array([[0, 1, 2], [0, 0, 1], [1, 1, 1]])
        m = TriangleMesh(verts, faces).dropped_degenerate()
        assert m.n_faces == 1

    def test_weld_merges_duplicates(self):
        verts = np.array(
            [[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 0, 0], [1, 1, 0], [0, 1, 0]], dtype=float
        )
        faces = np.array([[0, 1, 2], [3, 4, 5]])
        m = TriangleMesh(verts, faces).welded()
        assert m.n_vertices == 4
        assert m.n_faces == 2

    def test_merge(self):
        a = unit_quad()
        b = unit_quad().translated([5, 0, 0])
        m = TriangleMesh.merge([a, b])
        assert m.n_faces == 4
        assert m.n_vertices == 8

    def test_merge_with_empty(self):
        m = TriangleMesh.merge([TriangleMesh.empty(), unit_quad()])
        assert m.n_faces == 2

    def test_merge_all_empty(self):
        assert TriangleMesh.merge([TriangleMesh.empty()]).is_empty()
