"""Structural validation of the generated marching-cubes tables."""

from __future__ import annotations

import numpy as np

from repro.viz import mc_tables as t


class TestStructure:
    def test_twelve_edges(self):
        assert t.EDGE_CORNERS.shape == (12, 2)
        # Each edge's corners differ in exactly one coordinate bit.
        for a, b in t.EDGE_CORNERS:
            assert bin(a ^ b).count("1") == 1

    def test_edge_origin_axis_consistent(self):
        for e, (a, b) in enumerate(t.EDGE_CORNERS):
            di, dj, dk, axis = t.EDGE_ORIGIN_AXIS[e]
            assert np.array_equal(t.CORNER_OFFSETS[a], [di, dj, dk])
            step = t.CORNER_OFFSETS[b] - t.CORNER_OFFSETS[a]
            assert step[axis] == 1 and abs(step).sum() == 1

    def test_empty_and_full_configs(self):
        assert t.TRI_TABLE[0] == []
        assert t.TRI_TABLE[255] == []

    def test_single_corner_one_triangle(self):
        for c in range(8):
            tris = t.TRI_TABLE[1 << c]
            assert len(tris) == 1

    def test_max_tris(self):
        assert 4 <= t.MAX_TRIS_PER_CELL <= 6


class TestConsistency:
    def test_every_triangle_uses_crossed_edges_only(self):
        for config in range(256):
            crossed = set()
            for e, (a, b) in enumerate(t.EDGE_CORNERS):
                ina = (config >> a) & 1
                inb = (config >> b) & 1
                if ina != inb:
                    crossed.add(e)
            used = {e for tri in t.TRI_TABLE[config] for e in tri}
            assert used <= crossed
            # Every crossed edge must appear in the triangulation.
            assert crossed <= used or not t.TRI_TABLE[config]

    def test_triangle_count_matches_loop_structure(self):
        # Each loop of length L contributes L - 2 triangles; total edge uses
        # = sum over loops of (3(L-2)); each crossed edge lies on >= 1 tri.
        for config in range(1, 255):
            tris = t.TRI_TABLE[config]
            assert tris, f"non-trivial config {config} has no triangles"

    def test_complementary_configs_use_same_edges(self):
        for config in range(256):
            e1 = {e for tri in t.TRI_TABLE[config] for e in tri}
            e2 = {e for tri in t.TRI_TABLE[255 ^ config] for e in tri}
            assert e1 == e2

    def test_no_degenerate_triangles(self):
        for config in range(256):
            for tri in t.TRI_TABLE[config]:
                assert len(set(tri)) == 3

    def test_orientation_away_from_positive(self):
        # For single-corner configs the triangle normal must point away
        # from the inside corner.
        for c in range(8):
            (tri,) = t.TRI_TABLE[1 << c]
            pts = []
            for e in tri:
                a, b = t.EDGE_CORNERS[e]
                pts.append((t.CORNER_OFFSETS[a] + t.CORNER_OFFSETS[b]) / 2.0)
            normal = np.cross(pts[1] - pts[0], pts[2] - pts[0])
            outward = np.asarray(pts).mean(axis=0) - t.CORNER_OFFSETS[c]
            assert np.dot(normal, outward) > 0
