"""Tests for the end-to-end AMR iso-surface pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VisualizationError
from repro.viz import crack_report, dual_cell_isosurface, resampling_isosurface

from tests.conftest import make_sphere_hierarchy


@pytest.fixture(scope="module")
def hierarchy():
    return make_sphere_hierarchy(16)


class TestResampling:
    def test_produces_surface_on_both_levels(self, hierarchy):
        res = resampling_isosurface(hierarchy, "f", 0.55)
        assert len(res.level_meshes) == 2
        assert all(m.n_faces > 0 for m in res.level_meshes)

    def test_cracks_present_at_interface(self, hierarchy):
        res = resampling_isosurface(hierarchy, "f", 0.55)
        report = crack_report(res, hierarchy)
        assert report.open_edge_count > 0  # the paper's Figure 1a

    def test_surface_approximates_sphere(self, hierarchy):
        res = resampling_isosurface(hierarchy, "f", 0.55)
        radii = np.linalg.norm(res.merged.vertices - 1.0, axis=1)
        assert np.abs(radii - 0.55).max() < 0.1

    def test_coarse_does_not_cover_fine_region(self, hierarchy):
        res = resampling_isosurface(hierarchy, "f", 0.55)
        coarse = res.level_meshes[0]
        # Fine region is x > 1.0 (+ half-cell slack for boundary vertices).
        assert coarse.vertices[:, 0].max() <= 1.0 + 1e-9


class TestDualCell:
    def test_gap_larger_than_resampling_crack(self, hierarchy):
        res = resampling_isosurface(hierarchy, "f", 0.55)
        dual = dual_cell_isosurface(hierarchy, "f", 0.55, gap_fix="none")
        crack = crack_report(res, hierarchy)
        gap = crack_report(dual, hierarchy)
        assert gap.mean_gap > crack.mean_gap  # Figure 1b vs 1a

    def test_redundant_fix_shrinks_gap(self, hierarchy):
        dual = dual_cell_isosurface(hierarchy, "f", 0.55, gap_fix="none")
        fixed = dual_cell_isosurface(hierarchy, "f", 0.55, gap_fix="redundant")
        gap = crack_report(dual, hierarchy)
        sealed = crack_report(fixed, hierarchy)
        assert sealed.mean_gap < gap.mean_gap  # Figure 1c
        assert sealed.max_gap < gap.max_gap

    def test_redundant_fix_overlaps_levels(self, hierarchy):
        fixed = dual_cell_isosurface(hierarchy, "f", 0.55, gap_fix="redundant")
        coarse = fixed.level_meshes[0]
        # Coarse surface now extends into the refined half (x > 1).
        assert coarse.vertices[:, 0].max() > 1.0

    def test_unknown_gap_fix_rejected(self, hierarchy):
        with pytest.raises(VisualizationError):
            dual_cell_isosurface(hierarchy, "f", 0.55, gap_fix="weld")

    def test_method_label(self, hierarchy):
        assert dual_cell_isosurface(hierarchy, "f", 0.55).method == "dual-cell[none]"


class TestResultContainer:
    def test_merged_face_count(self, hierarchy):
        res = resampling_isosurface(hierarchy, "f", 0.55)
        assert res.merged.n_faces == res.n_faces

    def test_2d_hierarchy_rejected(self):
        from repro.amr import AMRHierarchy, AMRLevel, Box, BoxArray, Patch

        dom = Box.from_shape((4, 4))
        lev = AMRLevel(0, BoxArray([dom]), (1.0, 1.0), {"f": [Patch.full(dom, 0.0)]})
        h = AMRHierarchy(dom, [lev], 2)
        with pytest.raises(VisualizationError):
            resampling_isosurface(h, "f", 0.5)
