"""End-to-end integration: generate -> store -> compress -> visualize -> measure.

Walks the complete reproduction pipeline on a small Nyx-like dataset and
asserts the paper's headline findings hold along the way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import flatten_to_uniform, read_plotfile, write_plotfile
from repro.compression import compress_hierarchy, decompress_hierarchy
from repro.experiments.datasets import load_app
from repro.metrics import psnr, r_ssim, verify_error_bound
from repro.viz import (
    crack_report,
    dual_cell_isosurface,
    render_mesh,
    resampling_isosurface,
)

SCALE = 0.25


@pytest.fixture(scope="module")
def nyx():
    return load_app("nyx", SCALE)


class TestFullPipeline:
    def test_plotfile_then_compress_then_visualize(self, nyx, tmp_path):
        # 1. Store and reload (the Figure 3 storage layout).
        path = write_plotfile(tmp_path / "plt", nyx.hierarchy)
        loaded = read_plotfile(path)
        # 2. Compress the evaluated field at eb 1e-3 relative.
        container = compress_hierarchy(loaded, "sz-lr", 1e-3, fields=[nyx.field])
        assert container.ratio > 1.5
        restored = decompress_hierarchy(container, loaded)
        # 3. Per-patch error bound holds.
        for lev_o, lev_r in zip(loaded, restored):
            for p, q in zip(lev_o.patches(nyx.field), lev_r.patches(nyx.field)):
                eb = 1e-3 * (p.data.max() - p.data.min())
                assert verify_error_bound(p.data, q.data, max(eb, 1e-12))
        # 4. Both visualization methods produce surfaces.
        res = resampling_isosurface(restored, nyx.field, nyx.iso)
        dual = dual_cell_isosurface(restored, nyx.field, nyx.iso, gap_fix="redundant")
        assert res.n_faces > 0 and dual.n_faces > 0
        # 5. Rendered images compare against the original data's renders.
        orig_res = resampling_isosurface(loaded, nyx.field, nyx.iso)
        img_a = render_mesh(orig_res.merged, size=(96, 96))
        img_b = render_mesh(res.merged, size=(96, 96), bounds=orig_res.merged.bounds())
        assert r_ssim(img_a, img_b, data_range=1.0) < 0.2

    def test_quality_ordering_headline(self, nyx):
        """The paper's headline: dual-cell hurts decompressed-data visuals."""
        h = nyx.hierarchy
        container = compress_hierarchy(h, "sz-lr", 1e-2, fields=[nyx.field])
        restored = decompress_hierarchy(container, h)

        def image(hierarchy, method):
            if method == "resampling":
                result = resampling_isosurface(hierarchy, nyx.field, nyx.iso)
            else:
                result = dual_cell_isosurface(hierarchy, nyx.field, nyx.iso, "redundant")
            dom_hi = np.asarray(h.grid_shape(0), dtype=float) * np.asarray(h[0].dx)
            return render_mesh(
                result.merged, size=(128, 128), bounds=(np.zeros(3), dom_hi)
            )

        deltas = {}
        for method in ("resampling", "dual"):
            a = image(h, method)
            b = image(restored, method)
            deltas[method] = r_ssim(a, b, data_range=1.0)
        assert deltas["dual"] > deltas["resampling"]

    def test_psnr_on_uniform_view(self, nyx):
        container = compress_hierarchy(nyx.hierarchy, "sz-interp", 1e-3, fields=[nyx.field])
        restored = decompress_hierarchy(container, nyx.hierarchy)
        a = flatten_to_uniform(nyx.hierarchy, nyx.field)
        b = flatten_to_uniform(restored, nyx.field)
        assert psnr(a, b) > 40.0

    def test_crack_report_stable_under_compression(self, nyx):
        container = compress_hierarchy(nyx.hierarchy, "sz-lr", 1e-3, fields=[nyx.field])
        restored = decompress_hierarchy(container, nyx.hierarchy)
        before = crack_report(resampling_isosurface(nyx.hierarchy, nyx.field, nyx.iso), nyx.hierarchy)
        after = crack_report(resampling_isosurface(restored, nyx.field, nyx.iso), restored)
        # Compression does not repair cracks; both runs show open edges.
        assert before.open_edge_count > 0
        assert after.open_edge_count > 0
