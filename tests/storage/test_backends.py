"""Storage backends: the byte surface under every container and series.

Three contracts: :class:`LocalFileBackend` is byte-identical to the
historical direct-``Path`` I/O; :class:`MemoryBackend` runs the full
write/read/append lifecycle without touching disk (and degrades
durability *visibly*); :class:`RangedBackend` turns reads into retried,
readahead ranged GETs without changing any bytes.
"""

from __future__ import annotations

import io
import random

import numpy as np
import pytest

from repro.compression.amr_codec import compress_hierarchy
from repro.compression.container import ContainerReader
from repro.errors import (
    CompressionError,
    FormatError,
    StorageError,
    TransientStorageError,
)
from repro.insitu import SeriesReader, StreamingWriter
from repro.storage import LocalFileBackend, MemoryBackend, RangedBackend
from tests.conftest import make_sphere_hierarchy


@pytest.fixture()
def hier():
    return make_sphere_hierarchy(8)


def _write_series(backend, name, steps=2):
    with StreamingWriter.create(name, "sz-lr", 1e-3, backend=backend) as writer:
        for i in range(steps):
            writer.append_step(make_sphere_hierarchy(8))
    return writer


class TestLocalFileBackend:
    def test_object_lifecycle(self, tmp_path):
        be = LocalFileBackend(tmp_path)
        with be.open_write("a/b.bin") as h:
            h.write(b"payload")
        assert be.exists("a/b.bin") and be.size("a/b.bin") == 7
        with be.open_read("a/b.bin") as h:
            assert h.read() == b"payload"
        with be.open_append("a/b.bin") as h:
            h.seek(0, io.SEEK_END)
            h.write(b"!")
        assert be.size("a/b.bin") == 8
        assert be.list("a/") == ["a/b.bin"]
        be.delete("a/b.bin")
        assert not be.exists("a/b.bin")

    def test_errors_wrap_as_storage_error(self, tmp_path):
        be = LocalFileBackend(tmp_path)
        with pytest.raises(StorageError):
            be.open_read("missing.bin")
        with pytest.raises(StorageError):
            be.size("missing.bin")
        with pytest.raises(StorageError):
            be.delete("missing.bin")

    def test_byte_identical_to_direct_path(self, tmp_path):
        """backend=LocalFileBackend() produces the same file as backend=None."""
        direct = tmp_path / "direct.rph2s"
        via = tmp_path / "via.rph2s"
        steps = [make_sphere_hierarchy(8)]
        with StreamingWriter.create(direct, "sz-lr", 1e-3) as w:
            w.append_step(steps[0])
        with StreamingWriter.create(str(via), "sz-lr", 1e-3,
                                    backend=LocalFileBackend(tmp_path)) as w:
            w.append_step(steps[0])
        assert direct.read_bytes() == via.read_bytes()


class TestMemoryBackend:
    def test_series_lifecycle_off_disk(self):
        be = MemoryBackend()
        writer = _write_series(be, "run.rph2s")
        assert writer.degraded  # no fd to fsync: loud, not silent
        with SeriesReader.open("run.rph2s", backend=be) as reader:
            assert reader.steps == (0, 1)
            got = reader.select(steps=1)
        assert {k[0] for k in got} == {1}
        # Append resumes from the stored object.
        with StreamingWriter.append_to("run.rph2s", backend=be) as writer:
            writer.append_step(make_sphere_hierarchy(8))
        with SeriesReader.open("run.rph2s", backend=be) as reader:
            assert reader.n_steps == 3

    def test_container_reads_through_backend(self, hier):
        be = MemoryBackend()
        blob = compress_hierarchy(hier, codec="sz-lr", error_bound=1e-3).tobytes()
        with be.open_write("h.rprh") as h:
            h.write(blob)
        with ContainerReader.open("h.rprh", backend=be) as reader:
            level, field, patch = reader.entries[0].key
            arr = reader.read_patch(level, field, patch)
        assert arr.size > 0

    def test_flush_publishes_mid_write(self):
        be = MemoryBackend()
        h = be.open_write("obj")
        h.write(b"half")
        h.flush()
        assert be.size("obj") == 4  # observable before close
        h.write(b"+rest")
        h.close()
        assert be.size("obj") == 9

    def test_missing_objects_raise(self):
        be = MemoryBackend()
        for op in (be.open_read, be.open_append, be.size, be.delete):
            with pytest.raises(StorageError, match="no stored object"):
                op("ghost")

    def test_backend_and_mmap_are_exclusive(self, tmp_path):
        be = MemoryBackend()
        with pytest.raises(CompressionError, match="mmap"):
            SeriesReader.open("x.rph2s", backend=be, mmap=True)
        with pytest.raises(FormatError, match="mmap"):
            ContainerReader.open("x.rprh", backend=be, mmap=True)


class TestRangedBackend:
    def test_readahead_batches_gets(self):
        inner = MemoryBackend()
        with inner.open_write("obj") as h:
            h.write(bytes(range(256)) * 64)  # 16 KiB
        be = RangedBackend(inner, readahead=4096)
        h = be.open_read("obj")
        first = h.read(10)
        assert first == bytes(range(10))
        for _ in range(100):
            h.read(8)  # all served from the readahead window
        assert be.stats["requests"] == 1
        h.seek(-16, io.SEEK_END)
        assert len(h.read()) == 16  # window miss: exactly one more GET
        assert be.stats["requests"] == 2
        h.close()
        assert h.closed

    def test_retry_with_exponential_backoff(self):
        inner = MemoryBackend()
        with inner.open_write("obj") as h:
            h.write(b"x" * 100)
        failures = {"left": 2}
        naps = []

        def fault(name, offset, length, attempt):
            if failures["left"]:
                failures["left"] -= 1
                raise TransientStorageError(f"503 on {name} attempt {attempt}")

        be = RangedBackend(inner, max_retries=3, backoff=0.01, jitter=False,
                           sleep=naps.append, fault=fault)
        h = be.open_read("obj")
        assert h.read() == b"x" * 100
        assert be.stats["retries"] == 2
        assert naps == [0.01, 0.02]  # exponential, injected clock

    def test_full_jitter_bounded_by_exponential_envelope(self):
        inner = MemoryBackend()
        with inner.open_write("obj") as h:
            h.write(b"x" * 100)
        failures = {"left": 3}
        naps = []

        def fault(name, offset, length, attempt):
            if failures["left"]:
                failures["left"] -= 1
                raise TransientStorageError("503")

        be = RangedBackend(inner, max_retries=3, backoff=0.01,
                           sleep=naps.append, fault=fault,
                           rng=random.Random(42))
        assert be.open_read("obj").read() == b"x" * 100
        assert len(naps) == 3
        for attempt, nap in enumerate(naps, start=1):
            assert 0.0 <= nap <= 0.01 * 2 ** (attempt - 1)
        # Seeded rng: the schedule is reproducible.
        failures["left"] = 3
        naps2 = []
        be2 = RangedBackend(inner, max_retries=3, backoff=0.01,
                            sleep=naps2.append, fault=fault,
                            rng=random.Random(42))
        assert be2.open_read("obj").read() == b"x" * 100
        assert naps2 == naps

    def test_max_elapsed_retry_budget(self):
        inner = MemoryBackend()
        with inner.open_write("obj") as h:
            h.write(b"data")

        def always_fail(name, offset, length, attempt):
            raise TransientStorageError("permanent brownout")

        # A fake clock that leaps 10s per look: the first computed delay
        # already blows the 5s budget, so no retry happens at all.
        ticks = iter(range(0, 1000, 10))
        be = RangedBackend(inner, max_retries=5, backoff=0.01, jitter=False,
                           max_elapsed=5.0, sleep=lambda s: None,
                           clock=lambda: float(next(ticks)),
                           fault=always_fail)
        with pytest.raises(StorageError, match="5.0s retry budget"):
            be.open_read("obj").read()
        assert be.stats["retries"] == 0

    def test_max_elapsed_allows_retries_within_budget(self):
        inner = MemoryBackend()
        with inner.open_write("obj") as h:
            h.write(b"payload")
        failures = {"left": 2}

        def fault(name, offset, length, attempt):
            if failures["left"]:
                failures["left"] -= 1
                raise TransientStorageError("503")

        be = RangedBackend(inner, max_retries=3, backoff=0.001, jitter=False,
                           max_elapsed=60.0, sleep=lambda s: None,
                           fault=fault)
        assert be.open_read("obj").read() == b"payload"
        assert be.stats["retries"] == 2

    def test_exhausted_retries_raise_storage_error(self):
        inner = MemoryBackend()
        with inner.open_write("obj") as h:
            h.write(b"data")

        def always_fail(name, offset, length, attempt):
            raise TransientStorageError("permanent brownout")

        be = RangedBackend(inner, max_retries=2, sleep=lambda s: None,
                           fault=always_fail)
        with pytest.raises(StorageError, match="after 3 attempts"):
            be.open_read("obj").read()

    def test_series_read_is_o_selection_gets(self, tmp_path):
        """Selective reads through the ranged decorator fetch a bounded
        number of ranges, far less than the file."""
        inner = LocalFileBackend(tmp_path)
        _write_series(inner, str(tmp_path / "run.rph2s"), steps=3)
        total = inner.size(str(tmp_path / "run.rph2s"))
        be = RangedBackend(inner, readahead=1 << 12)
        with SeriesReader.open(str(tmp_path / "run.rph2s"), backend=be) as r:
            r.select(steps=1)
        assert 0 < be.stats["requests"] < 40
        assert be.stats["bytes_fetched"] < 3 * total

    def test_writes_and_metadata_delegate(self, tmp_path):
        inner = MemoryBackend()
        be = RangedBackend(inner)
        with be.open_write("w") as h:
            h.write(b"zz")
        assert inner.exists("w") and be.exists("w") and be.size("w") == 2
        assert be.list("") == ["w"]
        be.delete("w")
        assert not inner.exists("w")

    def test_invalid_config_rejected(self):
        with pytest.raises(StorageError):
            RangedBackend(MemoryBackend(), readahead=0)
        with pytest.raises(StorageError):
            RangedBackend(MemoryBackend(), max_retries=-1)


class TestShardedThroughBackends:
    def test_sharded_campaign_in_memory(self):
        from repro.insitu import ShardedSeriesWriter

        be = MemoryBackend()
        with ShardedSeriesWriter.create("camp.rphm", "sz-lr", 1e-3, n_shards=2,
                                        parallel="serial", backend=be) as w:
            for i in range(4):
                w.append_step(make_sphere_hierarchy(8))
        assert sorted(be.list("camp.shard")) == [
            "camp.shard000.rph2s", "camp.shard001.rph2s",
        ]
        with SeriesReader.open("camp.rphm", backend=be) as reader:
            assert reader.is_sharded and reader.steps == (0, 1, 2, 3)
            got = reader.select(steps=[2])
        assert {k[0] for k in got} == {2}
