"""Level-batched fused compression: grouped streams, shared codebooks.

Covers the ``compress_hierarchy(..., batch="level")`` path end to end:
per-patch vs batched value equivalence under the error bound, the grouped
container layout (``RPGB`` sections + extended index), O(selection) random
access, byte identity across execution modes, the corruption suite for
doctored group sections, and the group-aware ``decompress_block`` fast
path.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.level import AMRLevel
from repro.amr.patch import Patch
from repro.compression import huffman
from repro.compression.amr_codec import (
    CompressedHierarchy,
    compress_hierarchy,
    decompress_hierarchy,
    decompress_selection,
)
from repro.compression.base import GROUPED_STAGE, SharedEntropy, StreamReader
from repro.compression.container import (
    GROUP_MAGIC,
    ContainerReader,
    pack_container,
    pack_group,
)
from repro.compression.registry import codec_supports_batch
from repro.compression.sz_lr import SZLR
from repro.errors import CompressionError, FormatError


def many_patch_hierarchy(
    n_patches: tuple[int, int, int] = (3, 3, 2),
    ps: int = 16,
    sigma: float = 0.05,
    seed: int = 0,
    field: str = "density",
) -> AMRHierarchy:
    """Single-level hierarchy tiled with ``ps``-cube patches."""
    rng = np.random.default_rng(seed)
    nx, ny, nz = n_patches
    grids = np.meshgrid(*[np.linspace(0.0, 1.0, ps)] * 3, indexing="ij")
    base = np.sin(6 * grids[0]) * np.cos(5 * grids[1]) + grids[2] ** 2
    boxes, patches = [], []
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                box = Box.from_shape((ps,) * 3, lo=(i * ps, j * ps, k * ps))
                boxes.append(box)
                data = base + sigma * rng.standard_normal((ps,) * 3) + 0.1 * (i + j + k)
                patches.append(Patch(box, data))
    level = AMRLevel(0, BoxArray(boxes), (1.0,) * 3, {field: patches})
    domain = Box.from_shape((nx * ps, ny * ps, nz * ps))
    return AMRHierarchy(domain, [level], 2)


@pytest.fixture(scope="module")
def hierarchy():
    return many_patch_hierarchy()


@pytest.fixture(scope="module", params=["sz-lr", "sz-interp"])
def codec_name(request):
    return request.param


@pytest.fixture(scope="module")
def grouped(hierarchy):
    return compress_hierarchy(
        hierarchy, "sz-lr", 1e-3, fields=["density"], batch="level"
    )


class TestBatchedEquivalence:
    def test_bound_holds_and_matches_per_patch(self, hierarchy, codec_name):
        """Batched output obeys the per-patch-resolved rel bound, and stays
        within 2*eb of the per-patch path's reconstruction (same math,
        kernel-batched)."""
        per = compress_hierarchy(hierarchy, codec_name, 1e-3, fields=["density"])
        bat = compress_hierarchy(
            hierarchy, codec_name, 1e-3, fields=["density"], batch="level"
        )
        assert bat.groups, "level batching should produce shared-codebook groups"
        dec_per = per.select()
        dec_bat = bat.select()
        for p_idx, patch in enumerate(hierarchy[0].patches("density")):
            eb = 1e-3 * (patch.data.max() - patch.data.min())
            key = (0, "density", p_idx)
            assert np.abs(dec_bat[key] - patch.data).max() <= eb * (1 + 1e-12)
            assert np.abs(dec_bat[key] - dec_per[key]).max() <= 2 * eb

    def test_grouped_streams_record_stage_and_member(self, grouped):
        for key, (gid, member) in grouped.stream_groups.items():
            lev, field, p_idx = key
            reader = StreamReader(grouped.streams[lev][field][p_idx])
            assert reader.params["entropy"] == GROUPED_STAGE
            assert reader.params["group_member"] == member
            assert 0 <= gid < len(grouped.groups)

    def test_batched_smaller_than_per_patch(self, hierarchy):
        """Shared codebooks amortize header bytes: the grouped container
        should not be larger than the per-patch one on small patches."""
        per = compress_hierarchy(hierarchy, "sz-lr", 1e-3, fields=["density"])
        bat = compress_hierarchy(
            hierarchy, "sz-lr", 1e-3, fields=["density"], batch="level"
        )
        assert bat.compressed_bytes <= per.compressed_bytes * 1.02

    def test_decompress_hierarchy_grouped(self, hierarchy, grouped):
        restored = decompress_hierarchy(grouped, hierarchy)
        for p_idx, patch in enumerate(hierarchy[0].patches("density")):
            eb = 1e-3 * (patch.data.max() - patch.data.min())
            out = restored[0].patches("density")[p_idx].data
            assert np.abs(out - patch.data).max() <= eb * (1 + 1e-12)

    def test_exclude_covered_batched(self):
        """Two-level hierarchy with the covered-cell fill: the batched path
        mirrors the per-patch bound-resolve-then-fill ordering."""
        from repro.sims import NyxConfig
        from repro.sims.nyx import nyx_multilevel_hierarchy

        h = nyx_multilevel_hierarchy(NyxConfig(coarse_n=16), levels=2, fractions=(0.4,))
        per = compress_hierarchy(
            h, "sz-lr", 1e-3, fields=["baryon_density"], exclude_covered=True
        )
        bat = compress_hierarchy(
            h, "sz-lr", 1e-3, fields=["baryon_density"], exclude_covered=True,
            batch="level",
        )
        dp = per.select()
        db = bat.select()
        assert set(dp) == set(db)
        for key in dp:
            scale = max(np.abs(dp[key]).max(), 1.0)
            assert np.abs(dp[key] - db[key]).max() <= 1e-6 * scale or np.allclose(
                dp[key], db[key], atol=4e-3 * scale
            )

    def test_unsupported_codec_raises(self, hierarchy):
        with pytest.raises(CompressionError, match="level-batched"):
            compress_hierarchy(
                hierarchy, "zfp-like", 1e-3, fields=["density"], batch="level"
            )
        with pytest.raises(CompressionError, match="batch mode"):
            compress_hierarchy(
                hierarchy, "sz-lr", 1e-3, fields=["density"], batch="bogus"
            )

    def test_batch_of_single_cell_patches(self):
        """Patches that produce zero interpolation codes (1-cell arrays)
        batch through the deflate fallback instead of crashing (review
        regression)."""
        from repro.compression.sz_interp import SZInterp

        codec = SZInterp()
        batch = np.ones((4, 1, 1, 1)) * np.arange(1, 5)[:, None, None, None]
        result = codec.compress_batch(batch, 1e-3, "rel")
        assert result.codebook is None  # fallback: self-contained streams
        for i, stream in enumerate(result.streams):
            out = codec.decompress(stream)
            assert np.abs(out - batch[i]).max() <= 1e-3

    def test_registry_reports_batch_support(self):
        assert codec_supports_batch("sz-lr")
        assert codec_supports_batch("sz-interp")
        assert not codec_supports_batch("zfp-like")

    def test_mixed_shapes_form_separate_groups(self):
        """Patches of different shapes in one (level, field) land in
        distinct groups, all decodable."""
        rng = np.random.default_rng(3)
        boxes = [
            Box.from_shape((8, 8, 8), lo=(0, 0, 0)),
            Box.from_shape((8, 8, 8), lo=(8, 0, 0)),
            Box.from_shape((16, 8, 8), lo=(0, 8, 0)),
            Box.from_shape((16, 8, 8), lo=(0, 16, 0)),
        ]
        patches = [Patch(b, rng.standard_normal(b.shape)) for b in boxes]
        level = AMRLevel(0, BoxArray(boxes), (1.0,) * 3, {"f": patches})
        h = AMRHierarchy(Box.from_shape((16, 24, 8)), [level], 2)
        bat = compress_hierarchy(h, "sz-lr", 1e-3, fields=["f"], batch="level")
        assert len(bat.groups) == 2
        dec = bat.select()
        for p_idx, patch in enumerate(patches):
            eb = 1e-3 * (patch.data.max() - patch.data.min())
            assert np.abs(dec[(0, "f", p_idx)] - patch.data).max() <= eb * (1 + 1e-12)


class TestBatchedDeterminism:
    def test_byte_identical_across_modes(self, hierarchy):
        """Serial, thread, and process execution produce identical grouped
        container bytes (acceptance criterion)."""
        blobs = {
            mode: compress_hierarchy(
                hierarchy, "sz-lr", 1e-3, fields=["density"], batch="level",
                parallel=mode, workers=3,
            ).tobytes()
            for mode in ("serial", "thread", "process")
        }
        assert blobs["serial"] == blobs["thread"] == blobs["process"]

    def test_select_identical_across_modes(self, grouped):
        base = grouped.select()
        for mode in ("thread", "process"):
            other = grouped.select(parallel=mode, workers=3)
            assert set(base) == set(other)
            for key in base:
                assert np.array_equal(base[key], other[key])


class TestGroupedContainer:
    def test_roundtrip_bytes(self, grouped):
        raw = grouped.tobytes()
        back = CompressedHierarchy.frombytes(raw)
        assert back.groups == grouped.groups
        assert back.stream_groups == grouped.stream_groups
        assert back.tobytes() == raw

    def test_reader_modes_agree(self, grouped, tmp_path):
        raw = grouped.tobytes()
        path = tmp_path / "grouped.rprh"
        path.write_bytes(raw)
        in_mem = grouped.select()
        for source in (raw, path):
            out = decompress_selection(source)
            assert set(out) == set(in_mem)
            for key in out:
                assert np.array_equal(out[key], in_mem[key])
        with ContainerReader.open(path, mmap=True) as reader:
            out = reader.select()
            for key in out:
                assert np.array_equal(out[key], in_mem[key])

    def test_single_patch_selection(self, grouped):
        raw = grouped.tobytes()
        full = grouped.select()
        one = decompress_selection(raw, levels=0, patches=7)
        assert list(one) == [(0, "density", 7)]
        assert np.array_equal(one[(0, "density", 7)], full[(0, "density", 7)])

    def test_selection_process_mode(self, grouped):
        raw = grouped.tobytes()
        full = grouped.select()
        out = decompress_selection(raw, patches=[0, 3], parallel="process", workers=2)
        for key, arr in out.items():
            assert np.array_equal(arr, full[key])

    def test_compressed_bytes_counts_groups(self, grouped):
        reader = ContainerReader(grouped.tobytes())
        assert reader.group_entries
        assert reader.compressed_bytes == grouped.compressed_bytes

    def test_stream_alone_refuses_decode(self, grouped):
        """A grouped stream without its group section names the problem."""
        blob = grouped.streams[0]["density"][0]
        with pytest.raises(Exception, match="grouped"):
            SZLR().decompress(blob)


def _doctor(raw: bytes, offset: int, payload: bytes) -> bytes:
    out = bytearray(raw)
    out[offset : offset + len(payload)] = payload
    return bytes(out)


class TestGroupedCorruption:
    @pytest.fixture()
    def raw_and_reader(self, grouped):
        raw = grouped.tobytes()
        return raw, ContainerReader(raw)

    def test_truncated_shared_codebook(self, raw_and_reader):
        """A codebook_length running past the section end is rejected even
        with crc verification off (structural validation)."""
        raw, reader = raw_and_reader
        g = reader.group_entries[0]
        bad = _doctor(raw, g.offset + 8, struct.pack("<I", g.length))
        with pytest.raises(FormatError, match="truncated shared codebook|checksum"):
            ContainerReader(bad).select(patches=0, verify=False)

    def test_extent_past_group_end(self, raw_and_reader):
        """A member extent pointing past the payload region is rejected."""
        raw, reader = raw_and_reader
        g = reader.group_entries[0]
        handle = reader.group(g.gid)
        # stored (wrapped) codebook length lives in the section prefix
        (cb_len,) = struct.unpack_from("<I", raw, g.offset + 8)
        first_extent = g.offset + 20 + cb_len
        bad = _doctor(
            raw, first_extent, struct.pack("<QQ", 0, handle.payload_len + 9)
        )
        with pytest.raises(FormatError, match="past the group payload end|checksum"):
            ContainerReader(bad).select(patches=0, verify=False)

    def test_patch_count_mismatch(self, raw_and_reader):
        """Group header n_patches disagreeing with the index's references
        is corruption."""
        raw, reader = raw_and_reader
        g = reader.group_entries[0]
        n = reader.group(g.gid).n_patches
        bad = _doctor(raw, g.offset + 4, struct.pack("<I", n - 1))
        with pytest.raises(FormatError, match="patch-count mismatch|member|checksum"):
            ContainerReader(bad).select(verify=False)

    def test_header_crc_detects_doctoring(self, raw_and_reader):
        raw, reader = raw_and_reader
        g = reader.group_entries[0]
        bad = _doctor(raw, g.offset + 21, b"\xff")  # flip a codebook byte
        with pytest.raises(FormatError, match="checksum|codebook"):
            ContainerReader(bad).select(patches=0)

    def test_payload_crc_detects_doctoring(self, raw_and_reader):
        raw, reader = raw_and_reader
        g = reader.group_entries[0]
        handle = reader.group(g.gid)
        payload_start = g.offset + handle.header_len
        bad = bytearray(raw)
        bad[payload_start] ^= 0xFF
        with pytest.raises(FormatError, match="checksum"):
            ContainerReader(bytes(bad)).select(patches=0)

    def test_unknown_group_reference(self, grouped):
        raw = pack_container(
            grouped._meta(),
            grouped.streams,
            groups=grouped.groups,
            stream_groups={(0, "density", 0): (99, 0)},
        )
        with pytest.raises(FormatError, match="unknown group"):
            ContainerReader(raw)

    def test_unverified_access_does_not_poison_cache(self, raw_and_reader):
        """A verify=False read must not exempt later verify=True reads
        from the group-header crc check (review regression). The doctored
        byte is an extent-table crc field: structurally valid, so the
        unverified read succeeds and caches the handle."""
        raw, reader = raw_and_reader
        g = reader.group_entries[0]
        (cb_len,) = struct.unpack_from("<I", raw, g.offset + 8)
        crc_field = g.offset + 20 + cb_len + 1 * 20 + 16
        bad = _doctor(raw, crc_field, b"\xaa\xbb\xcc\xdd")
        tampered = ContainerReader(bad)
        assert tampered.select(patches=0, verify=False)  # caches the handle
        with pytest.raises(FormatError, match="checksum"):
            tampered.read_patch(0, "density", 1, verify=True)

    def test_group_magic_checked(self, raw_and_reader):
        raw, reader = raw_and_reader
        g = reader.group_entries[0]
        bad = _doctor(raw, g.offset, b"XXXX")
        with pytest.raises(FormatError, match="bad magic"):
            ContainerReader(bad).select(patches=0, verify=False)

    def test_pack_group_rejects_empty(self):
        with pytest.raises(CompressionError):
            pack_group(b"HUFBxxxx", [])

    def test_ungrouped_container_unchanged(self, hierarchy):
        """Per-patch containers carry no group table and keep 7-column
        entries — the pre-group byte format."""
        import json

        per = compress_hierarchy(hierarchy, "sz-lr", 1e-3, fields=["density"])
        reader = ContainerReader(per.tobytes())
        assert reader.group_entries == []
        raw = per.tobytes()
        # locate the index via the footer and check its schema directly
        idx_off, idx_len, _, magic = struct.unpack("<QQI8s", raw[-28:])
        index = json.loads(raw[idx_off : idx_off + idx_len])
        assert "groups" not in index
        assert all(len(row) == 7 for row in index["entries"])


class TestGroupedBlockDecode:
    def test_decompress_block_uses_only_member_payload(self, hierarchy, monkeypatch):
        """Block random access on a grouped stream decodes one patch's
        payload, not the whole group: the per-patch extents keep the
        symbol count at one patch's codes (regression for the fused
        layout)."""
        bat = compress_hierarchy(
            hierarchy, "sz-lr", 1e-3, fields=["density"], batch="level"
        )
        reader = ContainerReader(bat.tobytes())
        entry = reader.entry(0, "density", 2)
        blob = reader.read_stream(entry)
        shared = reader._entry_shared(entry)

        decoded_counts: list[int] = []
        orig = huffman.decode_with_codebook

        def counting(payload, codebook):
            out = orig(payload, codebook)
            decoded_counts.append(out.size)
            return out

        monkeypatch.setattr(huffman, "decode_with_codebook", counting)
        codec = SZLR(block_size="auto")
        block = codec.decompress_block(blob, 1, shared=shared)
        assert block.ndim == 3
        handle = reader.group(entry.group)
        n_patches = handle.n_patches
        assert n_patches >= 2
        patch_cells = 16**3
        assert decoded_counts == [patch_cells], (
            "block decode must read exactly the owning patch's code symbols"
        )
        # ... which is strictly fewer than a whole-group decode would be.
        assert decoded_counts[0] < n_patches * patch_cells

    def test_block_matches_full_decode(self, hierarchy):
        bat = compress_hierarchy(
            hierarchy, "sz-lr", 1e-3, fields=["density"], batch="level"
        )
        reader = ContainerReader(bat.tobytes())
        entry = reader.entry(0, "density", 4)
        blob = reader.read_stream(entry)
        shared = reader._entry_shared(entry)
        codec = SZLR(block_size="auto")
        full = codec.decompress(blob, shared=reader._entry_shared(entry))
        stream = StreamReader(blob)
        bs = int(stream.params["block_size"])
        block0 = codec.decompress_block(blob, 0, shared=shared)
        assert np.array_equal(block0, full[:bs, :bs, :bs])


class TestPoolIntegration:
    def test_compress_hierarchy_with_pool(self, hierarchy):
        from repro.parallel import WorkerPool

        serial = compress_hierarchy(
            hierarchy, "sz-lr", 1e-3, fields=["density"], batch="level"
        ).tobytes()
        with WorkerPool("thread", workers=3) as pool:
            for _ in range(2):  # reused across calls
                out = compress_hierarchy(
                    hierarchy, "sz-lr", 1e-3, fields=["density"], batch="level",
                    pool=pool,
                ).tobytes()
                assert out == serial
            assert not pool.closed

    def test_decompress_selection_with_pool(self, grouped):
        from repro.parallel import WorkerPool

        raw = grouped.tobytes()
        base = decompress_selection(raw)
        with WorkerPool("thread", workers=2) as pool:
            out = decompress_selection(raw, pool=pool)
        assert set(out) == set(base)
        for key in out:
            assert np.array_equal(out[key], base[key])

    def test_streaming_writer_shared_pool(self, hierarchy, tmp_path):
        """A shared WorkerPool pipelines the writer across steps and stays
        open after close(); output matches the writer-owned-executor path
        byte for byte."""
        from repro.insitu.writer import StreamingWriter
        from repro.parallel import WorkerPool

        own = tmp_path / "own.rph2s"
        shared = tmp_path / "shared.rph2s"
        with StreamingWriter.create(own, "sz-lr", 1e-3, parallel="thread", workers=2) as w:
            w.append_step(hierarchy, time=0.0)
            w.append_step(hierarchy, time=1.0)
        with WorkerPool("thread", workers=2) as pool:
            with StreamingWriter.create(shared, "sz-lr", 1e-3, pool=pool) as w:
                w.append_step(hierarchy, time=0.0)
                w.append_step(hierarchy, time=1.0)
            assert not pool.closed  # writer must not shut a shared pool down
            # and the pool is still usable afterwards
            assert pool.map(len, [b"ab", b"abc"]) == [2, 3]
        assert own.read_bytes() == shared.read_bytes()

    def test_streaming_writer_rejects_closed_pool(self, tmp_path):
        from repro.insitu.writer import StreamingWriter
        from repro.parallel import WorkerPool

        pool = WorkerPool("thread", workers=1)
        pool.close()
        with pytest.raises(CompressionError, match="closed"):
            StreamingWriter.create(tmp_path / "x.rph2s", "sz-lr", 1e-3, pool=pool)


class TestSharedCodebookUnit:
    def test_hufb_roundtrip(self):
        rng = np.random.default_rng(0)
        codes = np.rint(rng.standard_normal((4, 512)) * 9).astype(np.int64)
        cb = huffman.SharedCodebook.from_symbols(codes)
        back = huffman.SharedCodebook.frombytes(cb.tobytes())
        assert np.array_equal(back.alphabet, cb.alphabet)
        assert np.array_equal(back.lengths, cb.lengths)

    def test_encode_batch_rows_match_single(self):
        rng = np.random.default_rng(1)
        codes = np.rint(rng.standard_normal((6, 4096)) * 25).astype(np.int64)
        cb, inv = huffman.SharedCodebook.from_symbols_with_inverse(codes)
        batch = huffman.encode_batch(codes, cb, inverse=inv)
        for row, payload in zip(codes, batch):
            assert huffman.encode_with_codebook(row, cb) == payload
            assert np.array_equal(huffman.decode_with_codebook(payload, cb), row)

    def test_symbols_outside_alphabet_rejected(self):
        cb = huffman.SharedCodebook.from_symbols(np.arange(16))
        with pytest.raises(CompressionError, match="outside the shared codebook"):
            huffman.encode_with_codebook(np.array([999]), cb)

    def test_hufs_not_self_decodable(self):
        cb = huffman.SharedCodebook.from_symbols(np.arange(16))
        payload = huffman.encode_with_codebook(np.arange(16), cb)
        with pytest.raises(Exception, match="decode_with_codebook"):
            huffman.decode(payload)

    def test_corrupt_codebook_rejected(self):
        cb = huffman.SharedCodebook.from_symbols(np.arange(16))
        blob = bytearray(cb.tobytes())
        with pytest.raises(Exception, match="magic"):
            huffman.SharedCodebook.frombytes(b"NOPE" + bytes(blob[4:]))
        with pytest.raises(Exception, match="truncated"):
            huffman.SharedCodebook.frombytes(bytes(blob[:10]))

    def test_degenerate_single_symbol_group(self):
        codes = np.zeros((3, 64), dtype=np.int64)
        cb = huffman.SharedCodebook.from_symbols(codes)
        for payload in huffman.encode_batch(codes, cb):
            assert np.array_equal(
                huffman.decode_with_codebook(payload, cb), np.zeros(64, np.int64)
            )

    def test_shared_entropy_resolves_raw_bytes(self):
        cb = huffman.SharedCodebook.from_symbols(np.arange(8))
        shared = SharedEntropy(cb.tobytes(), b"")
        resolved = shared.resolve_codebook()
        assert np.array_equal(resolved.alphabet, cb.alphabet)
