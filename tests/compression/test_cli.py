"""Tests for the compression CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import write_plotfile
from repro.compression.__main__ import main


@pytest.fixture
def npy_file(tmp_path, smooth_field):
    path = tmp_path / "field.npy"
    np.save(path, smooth_field, allow_pickle=False)
    return path


class TestArrayCommands:
    def test_compress_decompress_roundtrip(self, npy_file, tmp_path, capsys, smooth_field):
        blob = tmp_path / "field.rprc"
        assert main(["compress", str(npy_file), "-o", str(blob), "--eb", "1e-3"]) == 0
        assert "ratio" in capsys.readouterr().out
        out = tmp_path / "restored.npy"
        assert main(["decompress", str(blob), "-o", str(out)]) == 0
        restored = np.load(out)
        eb = 1e-3 * (smooth_field.max() - smooth_field.min())
        assert np.abs(restored - smooth_field).max() <= eb * (1 + 1e-9)

    def test_default_output_names(self, npy_file, capsys):
        assert main(["compress", str(npy_file)]) == 0
        rprc = npy_file.with_suffix(".rprc")
        assert rprc.is_file()
        assert main(["decompress", str(rprc)]) == 0

    def test_codec_selection(self, npy_file, tmp_path, capsys):
        blob = tmp_path / "x.rprc"
        assert main(["compress", str(npy_file), "-o", str(blob), "--codec", "sz-interp"]) == 0
        assert main(["info", str(blob)]) == 0
        out = capsys.readouterr().out
        assert "sz-interp" in out
        assert "section" in out

    def test_abs_mode(self, npy_file, tmp_path, smooth_field):
        blob = tmp_path / "a.rprc"
        main(["compress", str(npy_file), "-o", str(blob), "--mode", "abs", "--eb", "0.05"])
        out = tmp_path / "a.npy"
        main(["decompress", str(blob), "-o", str(out)])
        assert np.abs(np.load(out) - smooth_field).max() <= 0.05 * (1 + 1e-9)


class TestPlotfileCommands:
    def test_compress_and_info(self, sphere_hierarchy, tmp_path, capsys):
        plt = write_plotfile(tmp_path / "plt", sphere_hierarchy)
        out = tmp_path / "plt.rprh"
        assert main(["compress-plotfile", str(plt), "-o", str(out), "--fields", "f"]) == 0
        assert "ratio" in capsys.readouterr().out
        assert main(["info-plotfile", str(out)]) == 0
        info = capsys.readouterr().out
        assert "level 1" in info and "sz-lr" in info

    def test_exclude_covered_flag(self, sphere_hierarchy, tmp_path, capsys):
        plt = write_plotfile(tmp_path / "plt", sphere_hierarchy)
        out = tmp_path / "x.rprh"
        assert main([
            "compress-plotfile", str(plt), "-o", str(out), "--exclude-covered"
        ]) == 0

    def test_parallel_flag_same_bytes(self, sphere_hierarchy, tmp_path, capsys):
        plt = write_plotfile(tmp_path / "plt", sphere_hierarchy)
        serial, thread = tmp_path / "s.rprh", tmp_path / "t.rprh"
        assert main(["compress-plotfile", str(plt), "-o", str(serial)]) == 0
        assert main([
            "compress-plotfile", str(plt), "-o", str(thread),
            "--parallel", "thread", "--workers", "3",
        ]) == 0
        assert serial.read_bytes() == thread.read_bytes()


class TestContainerCommands:
    @pytest.fixture
    def container_file(self, sphere_hierarchy, tmp_path):
        plt = write_plotfile(tmp_path / "plt", sphere_hierarchy)
        out = tmp_path / "plt.rprh"
        assert main(["compress-plotfile", str(plt), "-o", str(out), "--fields", "f"]) == 0
        return out

    def test_inspect_lists_patch_index(self, container_file, capsys):
        capsys.readouterr()
        assert main(["inspect", str(container_file)]) == 0
        out = capsys.readouterr().out
        assert "patches:" in out
        assert "offset" in out and "crc32" in out
        assert "sz-lr" in out

    def test_extract_single_patch(self, container_file, tmp_path, sphere_hierarchy, capsys):
        out = tmp_path / "patch.npy"
        assert main([
            "extract", str(container_file), "-o", str(out),
            "--level", "1", "--field", "f", "--patch", "0",
        ]) == 0
        data = np.load(out)
        orig = sphere_hierarchy[1].patches("f")[0].data
        eb = 1e-3 * (orig.max() - orig.min())
        assert data.shape == orig.shape
        assert np.abs(data - orig).max() <= eb * (1 + 1e-9)

    def test_extract_level_to_npz(self, container_file, tmp_path, capsys):
        out = tmp_path / "level0.npz"
        assert main([
            "extract", str(container_file), "-o", str(out), "--level", "0", "--npz"
        ]) == 0
        with np.load(out) as bundle:
            assert any(name.startswith("level0_f_") for name in bundle.files)

    def test_extract_empty_selection_fails(self, container_file, tmp_path, capsys):
        assert main(["extract", str(container_file), "--level", "9"]) == 1
        assert "no patches" in capsys.readouterr().err


class TestSeriesCommands:
    @pytest.fixture
    def plotfile_steps(self, sphere_hierarchy, tmp_path):
        """Three plotfile directories, one per timestep."""
        dirs = []
        for i in range(3):
            h = sphere_hierarchy.map_fields(lambda lev, name, d, i=i: d * (1 + 0.5 * i))
            dirs.append(str(write_plotfile(tmp_path / f"plt_{i:04d}", h)))
        return dirs

    @pytest.fixture
    def series_file(self, plotfile_steps, tmp_path):
        out = tmp_path / "run.rph2s"
        assert main(["stream", *plotfile_steps, "-o", str(out), "--fields", "f"]) == 0
        return out

    def test_stream_reports_steps(self, plotfile_steps, tmp_path, capsys):
        out = tmp_path / "r.rph2s"
        assert main(["stream", *plotfile_steps, "-o", str(out)]) == 0
        text = capsys.readouterr().out
        assert "step 0" in text and "step 2" in text and "3 steps written" in text

    def test_stream_rejects_ambiguous_source(self, plotfile_steps, tmp_path, capsys):
        out = tmp_path / "r.rph2s"
        assert main(["stream", "-o", str(out)]) == 2
        assert main(["stream", *plotfile_steps, "--sim", "nyx", "-o", str(out)]) == 2

    def test_inspect_series_walks_timestep_index(self, series_file, capsys):
        capsys.readouterr()
        assert main(["inspect", str(series_file)]) == 0
        out = capsys.readouterr().out
        assert "RPH2S time series" in out
        assert "steps:    3" in out
        assert "ratio" in out

    def test_extract_step_patch(self, series_file, tmp_path, sphere_hierarchy, capsys):
        out = tmp_path / "p.npy"
        assert main([
            "extract", str(series_file), "-o", str(out),
            "--step", "2", "--level", "1", "--field", "f", "--patch", "0",
        ]) == 0
        data = np.load(out)
        orig = 2.0 * sphere_hierarchy[1].patches("f")[0].data
        eb = 1e-3 * (orig.max() - orig.min())
        assert np.abs(data - orig).max() <= eb * (1 + 1e-9)

    def test_extract_steps_to_npz(self, series_file, tmp_path, capsys):
        out = tmp_path / "sel.npz"
        assert main([
            "extract", str(series_file), "-o", str(out), "--step", "0,1", "--level", "0"
        ]) == 0
        with np.load(out) as bundle:
            assert sorted(bundle.files) == [
                "step00000_level0_f_patch00000",
                "step00001_level0_f_patch00000",
            ]

    def test_inspect_empty_series(self, tmp_path, capsys):
        from repro.insitu import StreamingWriter

        out = tmp_path / "empty.rph2s"
        StreamingWriter.create(out, "sz-lr", 1e-3, fields=["f"]).close()
        assert main(["inspect", str(out)]) == 0
        text = capsys.readouterr().out
        assert "steps:    0" in text and "nan" in text
