"""Tests for the SZ-L/R codec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.base import StreamReader
from repro.compression.sz_lr import MODE_LORENZO, MODE_REGRESSION, SZLR
from repro.errors import CompressionError, DecompressionError


@pytest.fixture(params=["auto", "lorenzo", "regression"])
def codec(request) -> SZLR:
    return SZLR(predictor=request.param)


class TestErrorBound:
    @pytest.mark.parametrize("eb", [1e-4, 1e-3, 1e-2])
    def test_smooth_3d(self, codec, smooth_field, eb):
        blob = codec.compress(smooth_field, eb, mode="abs")
        recon = codec.decompress(blob)
        assert np.abs(recon - smooth_field).max() <= eb * (1 + 1e-12)

    def test_rough_3d(self, codec, rough_field):
        eb = 1e-3 * (rough_field.max() - rough_field.min())
        recon = codec.decompress(codec.compress(rough_field, 1e-3, mode="rel"))
        assert np.abs(recon - rough_field).max() <= eb * (1 + 1e-12)

    @pytest.mark.parametrize("shape", [(50,), (31, 17), (13, 14, 15)])
    def test_odd_shapes(self, rng, shape):
        data = rng.normal(size=shape)
        c = SZLR()
        recon = c.decompress(c.compress(data, 0.01, mode="abs"))
        assert recon.shape == shape
        assert np.abs(recon - data).max() <= 0.01 * (1 + 1e-12)

    def test_constant_field(self):
        data = np.full((12, 12, 12), 3.14)
        c = SZLR()
        recon = c.decompress(c.compress(data, 1e-6, mode="rel"))
        assert np.abs(recon - data).max() <= 1e-6


class TestBehaviour:
    def test_smooth_data_compresses_well(self, smooth_field):
        c = SZLR()
        blob = c.compress(smooth_field, 1e-3, mode="rel")
        assert smooth_field.nbytes / len(blob) > 5

    def test_auto_no_worse_than_either(self, rough_field):
        blobs = {
            p: len(SZLR(predictor=p).compress(rough_field, 1e-3, mode="rel"))
            for p in ("auto", "lorenzo", "regression")
        }
        assert blobs["auto"] <= 1.05 * min(blobs["lorenzo"], blobs["regression"])

    def test_mode_forcing(self, smooth_field):
        for pred, expect in (("lorenzo", MODE_LORENZO), ("regression", MODE_REGRESSION)):
            blob = SZLR(predictor=pred).compress(smooth_field, 1e-3)
            reader = StreamReader(blob)
            from repro.compression.lossless import decompress_bytes

            modes = np.frombuffer(decompress_bytes(reader.section("modes")), dtype=np.uint8)
            assert (modes == expect).all()

    def test_deflate_entropy_variant(self, smooth_field):
        c = SZLR(entropy="deflate")
        recon = c.decompress(c.compress(smooth_field, 1e-3))
        assert np.abs(recon - smooth_field).max() <= 1e-3 * (1 + 1e-12)

    def test_block_size_variants(self, smooth_field):
        for bs in (4, 8, 12):
            c = SZLR(block_size=bs)
            recon = c.decompress(c.compress(smooth_field, 1e-3))
            assert np.abs(recon - smooth_field).max() <= 1e-3 * (1 + 1e-12)

    def test_stage_times_recorded(self, smooth_field):
        c = SZLR()
        c.compress(smooth_field, 1e-3)
        stages = c.last_stage_times.stages
        assert {"blockify", "lorenzo", "regression", "entropy"} <= set(stages)

    def test_stream_self_describing(self, smooth_field):
        blob = SZLR().compress(smooth_field, 1e-3)
        reader = StreamReader(blob)
        assert reader.codec == "sz-lr"
        assert reader.shape == smooth_field.shape


class TestRandomAccess:
    def test_block_matches_full_decode(self, smooth_field):
        c = SZLR(block_size=6)
        blob = c.compress(smooth_field, 1e-3, mode="abs")
        full = c.decompress(blob)
        padded = np.pad(full, [(0, (-s) % 6) for s in full.shape], mode="edge")
        nb = tuple(s // 6 for s in padded.shape)
        for idx in (0, 7, nb[0] * nb[1] * nb[2] - 1):
            block = c.decompress_block(blob, idx)
            bi = np.unravel_index(idx, nb)
            expect = padded[
                bi[0] * 6 : bi[0] * 6 + 6, bi[1] * 6 : bi[1] * 6 + 6, bi[2] * 6 : bi[2] * 6 + 6
            ]
            # Random access must agree with the full reconstruction wherever
            # the block lies inside the unpadded array.
            assert np.allclose(block, expect, atol=1e-12)

    def test_out_of_range_rejected(self, smooth_field):
        c = SZLR()
        blob = c.compress(smooth_field, 1e-2)
        with pytest.raises(DecompressionError):
            c.decompress_block(blob, 10**6)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(CompressionError):
            SZLR(block_size=1)
        with pytest.raises(CompressionError):
            SZLR(entropy="arith")
        with pytest.raises(CompressionError):
            SZLR(predictor="dct")

    def test_nan_rejected(self):
        data = np.ones((8, 8))
        data[0, 0] = np.nan
        with pytest.raises(CompressionError):
            SZLR().compress(data, 1e-3)

    def test_int_rejected(self):
        with pytest.raises(CompressionError):
            SZLR().compress(np.ones((4, 4), dtype=np.int32), 1e-3)

    def test_4d_rejected(self):
        with pytest.raises(CompressionError):
            SZLR().compress(np.zeros((2, 2, 2, 2)), 1e-3)

    def test_zero_eb_rejected(self, smooth_field):
        with pytest.raises(CompressionError):
            SZLR().compress(smooth_field, 0.0)

    def test_wrong_codec_stream_rejected(self, smooth_field):
        from repro.compression.sz_interp import SZInterp

        blob = SZInterp().compress(smooth_field, 1e-3)
        with pytest.raises(DecompressionError):
            SZLR().decompress(blob)

    def test_float32_preserved(self, rng):
        data = rng.normal(size=(12, 12, 12)).astype(np.float32)
        c = SZLR()
        recon = c.decompress(c.compress(data, 1e-2, mode="abs"))
        assert recon.dtype == np.float32
        assert np.abs(recon.astype(np.float64) - data).max() <= 1e-2 * (1 + 1e-6)
