"""Tests for the lossless byte backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.lossless import (
    BACKENDS,
    compress_bytes,
    decompress_bytes,
    pack_ints,
    unpack_ints,
)
from repro.errors import CompressionError, DecompressionError


class TestBytes:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_roundtrip(self, backend):
        raw = b"the quick brown fox " * 100
        assert decompress_bytes(compress_bytes(raw, backend)) == raw

    def test_empty_payload(self):
        assert decompress_bytes(compress_bytes(b"")) == b""

    def test_deflate_compresses(self):
        raw = b"a" * 10_000
        assert len(compress_bytes(raw, "deflate")) < 200

    def test_unknown_backend_rejected(self):
        with pytest.raises(CompressionError):
            compress_bytes(b"x", "zstd")

    def test_corrupt_stream_rejected(self):
        blob = compress_bytes(b"hello world" * 10, "deflate")
        with pytest.raises(DecompressionError):
            decompress_bytes(blob[:1] + b"\xff" + blob[5:])

    def test_unknown_tag_rejected(self):
        with pytest.raises(DecompressionError):
            decompress_bytes(b"\x9fdata")

    def test_empty_blob_rejected(self):
        with pytest.raises(DecompressionError):
            decompress_bytes(b"")


class TestPackInts:
    def test_roundtrip_int64(self, rng):
        arr = rng.integers(-(2**40), 2**40, size=1000)
        assert np.array_equal(unpack_ints(pack_ints(arr)), arr)

    def test_narrowing_small_values(self, rng):
        arr = rng.integers(-100, 100, size=10_000)
        blob = pack_ints(arr)
        # int8 narrowing: payload well under the int64 raw size.
        assert len(blob) < arr.size  # compressed int8 stream
        assert np.array_equal(unpack_ints(blob), arr)

    def test_empty_array(self):
        out = unpack_ints(pack_ints(np.empty(0, dtype=np.int64)))
        assert out.size == 0

    def test_output_always_int64(self):
        out = unpack_ints(pack_ints(np.array([1, 2, 3], dtype=np.int8)))
        assert out.dtype == np.int64

    def test_float_rejected(self):
        with pytest.raises(CompressionError):
            pack_ints(np.array([1.5]))

    def test_truncated_rejected(self):
        with pytest.raises(DecompressionError):
            unpack_ints(b"\x00\x01")

    def test_boundary_values(self):
        arr = np.array([np.iinfo(np.int64).min, np.iinfo(np.int64).max, 0])
        assert np.array_equal(unpack_ints(pack_ints(arr)), arr)

    def test_already_narrow_dtype_kept(self, rng):
        """An input already stored in the narrowest fitting dtype packs to
        the same bytes (the astype is now a no-op, not a copy)."""
        arr8 = rng.integers(-100, 100, size=4096).astype(np.int8)
        assert pack_ints(arr8) == pack_ints(arr8.astype(np.int64))
        assert np.array_equal(unpack_ints(pack_ints(arr8)), arr8)

    def test_level_reachable_and_roundtrips(self, rng):
        """The backend level threads through; any level decodes (the blob
        self-describes its backend, not its level)."""
        arr = rng.integers(-5, 5, size=50_000)
        fast = pack_ints(arr, "deflate", 1)
        slow = pack_ints(arr, "deflate", 9)
        assert np.array_equal(unpack_ints(fast), arr)
        assert np.array_equal(unpack_ints(slow), arr)
        assert len(slow) <= len(fast)
