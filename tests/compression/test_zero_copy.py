"""Zero-copy (mmap / buffer) container and series read path.

The acceptance contract: ``decompress_selection`` on an mmap-opened
container hands the codecs ``memoryview`` slices of the mapping — no
intermediate ``bytes`` copy of any patch stream is allocated — with crc
verification running against the view, and byte-identical results to the
copying file mode. Also pins the constructor-validation error taxonomy:
misusing a codec *constructor* is a :class:`CompressionError`, never a
:class:`DecompressionError` (nothing is being decoded yet).
"""

from __future__ import annotations

import mmap

import numpy as np
import pytest

from repro.amr.io import write_series
from repro.compression import container as container_mod
from repro.compression.amr_codec import compress_hierarchy
from repro.compression.container import ContainerReader
from repro.compression.sz_interp import SZInterp
from repro.compression.sz_lr import SZLR
from repro.compression.zfp_like import ZFPLike
from repro.errors import CompressionError, DecompressionError, FormatError
from repro.insitu import SeriesReader
from tests.conftest import make_sphere_hierarchy


@pytest.fixture(scope="module")
def container_path(tmp_path_factory):
    hier = make_sphere_hierarchy(12)
    raw = compress_hierarchy(hier, "sz-lr", 1e-3).tobytes()
    path = tmp_path_factory.mktemp("zc") / "snap.rph2"
    path.write_bytes(raw)
    return path


@pytest.fixture(scope="module")
def series_path(tmp_path_factory):
    base = make_sphere_hierarchy(8)
    steps = [
        base.map_fields(lambda lev, name, d, i=i: d * (1.0 + 0.25 * i))
        for i in range(3)
    ]
    path = tmp_path_factory.mktemp("zc") / "run.rph2s"
    write_series(path, steps, codec="sz-lr", error_bound=1e-3)
    return path


class TestContainerMmap:
    def test_mapped_flag(self, container_path):
        with ContainerReader.open(container_path) as r:
            assert not r.mapped
        with ContainerReader.open(container_path, mmap=True) as r:
            assert r.mapped

    def test_results_match_file_mode(self, container_path):
        with ContainerReader.open(container_path) as rf:
            via_file = rf.select()
        with ContainerReader.open(container_path, mmap=True) as rm:
            via_map = rm.select()
        assert via_file.keys() == via_map.keys()
        for key in via_file:
            assert np.array_equal(via_file[key], via_map[key])

    def test_read_stream_returns_view_of_mapping(self, container_path):
        with ContainerReader.open(container_path, mmap=True) as r:
            for entry in r.entries:
                blob = r.read_stream(entry)
                assert isinstance(blob, memoryview)
                assert isinstance(blob.obj, mmap.mmap)
                assert len(blob) == entry.length
                blob.release()  # views must not outlive the mapping

    def test_live_view_pins_mapping(self, container_path):
        """Closing while a handed-out view is alive raises BufferError —
        the zero-copy contract is explicit, not a silent copy."""
        r = ContainerReader.open(container_path, mmap=True)
        blob = r.read_stream(r.entries[0])
        with pytest.raises(BufferError):
            r.close()
        blob.release()
        r.close()

    def test_selection_passes_views_to_codecs(self, container_path, monkeypatch):
        """The acceptance check: no intermediate ``bytes`` copy of any
        patch stream between the mapping and the codec."""
        seen: list[tuple[type, bool]] = []
        real_task = container_mod._decode_task

        def spying_task(task):
            blob = task[1]
            seen.append(
                (type(blob), isinstance(blob, memoryview) and isinstance(blob.obj, mmap.mmap))
            )
            return real_task(task)

        monkeypatch.setattr(container_mod, "_decode_task", spying_task)
        with ContainerReader.open(container_path, mmap=True) as r:
            out = r.select()
        assert len(seen) == len(out) > 0
        for blob_type, is_mapping_view in seen:
            assert blob_type is memoryview, (
                f"codec got a {blob_type.__name__}: a bytes copy was made"
            )
            assert is_mapping_view

    def test_file_mode_still_passes_bytes(self, container_path, monkeypatch):
        seen: list[object] = []
        real_task = container_mod._decode_task

        def spying_task(task):
            seen.append(task[1])
            return real_task(task)

        monkeypatch.setattr(container_mod, "_decode_task", spying_task)
        with ContainerReader.open(container_path) as r:
            r.select()
        assert seen and all(isinstance(b, bytes) for b in seen)

    def test_crc_verified_against_view(self, container_path, tmp_path):
        """Payload corruption surfaces through the mmap path too."""
        raw = bytearray(container_path.read_bytes())
        with ContainerReader.open(container_path, mmap=True) as r:
            entry = r.entries[0]
        raw[entry.offset + entry.length // 2] ^= 0xFF
        bad = tmp_path / "corrupt.rph2"
        bad.write_bytes(bytes(raw))
        with ContainerReader.open(bad, mmap=True) as r:
            with pytest.raises(FormatError):
                r.read_stream(r.entries[0])

    def test_bytes_buffer_mode(self, container_path):
        raw = container_path.read_bytes()
        reader = ContainerReader(raw)
        assert reader.mapped
        with ContainerReader.open(container_path) as rf:
            expect = rf.select()
        got = reader.select()
        for key in expect:
            assert np.array_equal(expect[key], got[key])

    def test_thread_parallel_on_mapping(self, container_path):
        with ContainerReader.open(container_path, mmap=True) as r:
            serial = r.select()
            threaded = r.select(parallel="thread", workers=2)
        for key in serial:
            assert np.array_equal(serial[key], threaded[key])

    def test_close_releases_mapping(self, container_path):
        r = ContainerReader.open(container_path, mmap=True)
        r.read_patch(*r.entries[0].key)
        r.close()
        assert r._mmap is None and r._view is None

    def test_invalid_source_rejected(self):
        with pytest.raises(CompressionError):
            ContainerReader(12345)


class TestSeriesMmap:
    def test_results_match_file_mode(self, series_path):
        with SeriesReader.open(series_path) as rf:
            assert not rf.mapped
            via_file = rf.select()
        with SeriesReader.open(series_path, mmap=True) as rm:
            assert rm.mapped
            via_map = rm.select()
        assert via_file.keys() == via_map.keys()
        for key in via_file:
            assert np.array_equal(via_file[key], via_map[key])

    def test_segments_inherit_zero_copy_mode(self, series_path):
        with SeriesReader.open(series_path, mmap=True) as r:
            seg = r.open_step(r.steps[0])
            assert seg.mapped
            blob = seg.read_stream(seg.entries[0])
            assert isinstance(blob, memoryview)
            blob.release()
            seg.close()

    def test_verify_step_on_mapping(self, series_path):
        with SeriesReader.open(series_path, mmap=True) as r:
            for step in r.steps:
                r.verify_step(step)

    def test_read_patch_roundtrip(self, series_path):
        with SeriesReader.open(series_path, mmap=True) as r:
            arr = r.read_patch(r.steps[-1], 0, "f", 0)
        assert arr.size > 0

    def test_close_releases_mapping(self, series_path):
        r = SeriesReader.open(series_path, mmap=True)
        r.verify_step(r.steps[0])
        r.close()
        assert r._mmap is None and r._view is None

    def test_invalid_source_rejected(self):
        with pytest.raises(CompressionError):
            SeriesReader(object())


class TestConstructorErrorTaxonomy:
    """Constructor misuse is CompressionError — audited across codecs
    (SZInterp used to raise DecompressionError for a bad ``entropy``)."""

    @pytest.mark.parametrize("codec_cls", [SZInterp, SZLR, ZFPLike])
    def test_bad_entropy(self, codec_cls):
        with pytest.raises(CompressionError) as exc:
            codec_cls(entropy="rle")
        assert not isinstance(exc.value, DecompressionError)

    @pytest.mark.parametrize("codec_cls", [SZInterp, SZLR, ZFPLike])
    def test_bad_k_streams(self, codec_cls):
        for bad in (0, -4, "wide", 1.5):
            with pytest.raises(CompressionError) as exc:
                codec_cls(k_streams=bad)
            assert not isinstance(exc.value, DecompressionError)

    def test_k_streams_recorded_in_stream_params(self):
        from repro.compression.base import StreamReader

        data = np.linspace(0.0, 1.0, 4096).reshape(16, 16, 16)
        for k in ("auto", 8):
            blob = SZLR(k_streams=k).compress(data, 1e-3)
            assert StreamReader(blob).params["k_streams"] == k

    def test_explicit_k_decodes_regardless_of_reader_config(self):
        """Blobs self-describe their K; a differently-configured codec
        instance decodes them unchanged."""
        data = np.linspace(0.0, 1.0, 4096).reshape(16, 16, 16)
        blob = SZLR(k_streams=16).compress(data, 1e-3)
        recon = SZLR(k_streams=2).decompress(blob)
        assert np.abs(recon - data).max() <= 1e-3 * (1 + 1e-12)


class TestMmapOpenFailure:
    """A failing mmap open must surface the real FormatError — not a
    BufferError from closing a mapping the half-built reader still pins —
    and must not leak the mapping."""

    @pytest.fixture()
    def junk_path(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"\x81" * 80)
        return path

    def test_container_open_names_the_corruption(self, junk_path):
        with pytest.raises(FormatError, match="not an RPH2 container"):
            ContainerReader.open(junk_path, mmap=True)

    def test_series_open_names_the_corruption(self, junk_path):
        with pytest.raises(FormatError, match="not an RPH2S series"):
            SeriesReader.open(junk_path, mmap=True)

    def test_truncated_container_under_mmap(self, container_path, tmp_path):
        bad = tmp_path / "trunc.rph2"
        bad.write_bytes(container_path.read_bytes()[:-40])
        with pytest.raises(FormatError):
            ContainerReader.open(bad, mmap=True)


class TestBytesSourceZeroCopy:
    """decompress_selection on raw bytes routes through buffer mode: the
    codecs get memoryview slices of the caller's buffer, not BytesIO
    re-copies."""

    def test_bytes_source_passes_views(self, container_path, monkeypatch):
        from repro.compression.amr_codec import decompress_selection

        raw = container_path.read_bytes()
        seen: list[type] = []
        real_task = container_mod._decode_task

        def spying_task(task):
            seen.append(type(task[1]))
            return real_task(task)

        monkeypatch.setattr(container_mod, "_decode_task", spying_task)
        out = decompress_selection(raw)
        assert seen == [memoryview] * len(out)

    def test_frombytes_streams_are_owned_bytes(self, container_path):
        from repro.compression.amr_codec import CompressedHierarchy

        ch = CompressedHierarchy.frombytes(container_path.read_bytes())
        for level in ch.streams:
            for plist in level.values():
                assert all(type(b) is bytes for b in plist)


class TestCustomCodecRegistration:
    """resolve_patch_codec must not force k_streams on custom factories
    registered through the public register_codec API."""

    def test_plain_factory_still_constructs(self):
        from repro.compression.amr_codec import resolve_patch_codec
        from repro.compression.registry import (
            _FACTORIES,
            codec_accepts,
            register_codec,
        )

        class PlainCodec(SZLR):
            name = "plain-zc-test"

            def __init__(self):
                super().__init__()

        register_codec("plain-zc-test", PlainCodec)
        try:
            assert not codec_accepts("plain-zc-test", "k_streams")
            assert codec_accepts("sz-lr", "k_streams")
            codec = resolve_patch_codec("plain-zc-test", k_streams=8)
            assert isinstance(codec, PlainCodec)
        finally:
            _FACTORIES.pop("plain-zc-test", None)

    def test_named_codec_gets_k_streams(self):
        from repro.compression.amr_codec import resolve_patch_codec

        codec = resolve_patch_codec("sz-lr", k_streams=16)
        assert codec.k_streams == 16
