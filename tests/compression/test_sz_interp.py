"""Tests for the SZ-Interp codec and the interpolation plan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.base import StreamReader
from repro.compression.interpolation import InterpPlan, anchor_stride, predict_axis
from repro.compression.sz_interp import SZInterp
from repro.errors import CompressionError, DecompressionError


class TestPlan:
    def test_anchor_stride_power_of_two(self):
        assert anchor_stride((17, 5, 9)) == 32
        assert anchor_stride((64, 64, 64)) == 64
        assert anchor_stride((3,)) == 4

    def test_anchor_stride_capped(self):
        assert anchor_stride((4096,)) == 64

    def test_levels_halve(self):
        plan = InterpPlan((16, 16, 16))
        strides = [s for s, _ in plan.levels()]
        assert strides == [16, 8, 4, 2]

    def test_traversal_covers_every_point_once(self):
        shape = (11, 7, 5)
        plan = InterpPlan(shape)
        seen = np.zeros(shape, dtype=np.int32)
        seen[plan.anchor_slices()] += 1
        for stride, half in plan.levels():
            for axis in range(3):
                targets = np.arange(half, shape[axis], stride)
                if targets.size == 0:
                    continue
                grid = plan.target_grid(stride, axis)
                seen[grid] += 1
        assert (seen == 1).all()

    def test_traversal_covers_1d(self):
        shape = (23,)
        plan = InterpPlan(shape)
        seen = np.zeros(shape, dtype=np.int32)
        seen[plan.anchor_slices()] += 1
        for stride, half in plan.levels():
            targets = np.arange(half, shape[0], stride)
            if targets.size:
                seen[plan.target_grid(stride, 0)] += 1
        assert (seen == 1).all()


class TestPredictAxis:
    def test_linear_data_predicted_exactly(self):
        recon = np.arange(0.0, 32.0, 1.0)
        targets = np.arange(2, 30, 4)
        pred = predict_axis(recon, 0, targets, 2)
        assert np.allclose(pred, recon[targets])

    def test_cubic_data_predicted_exactly(self):
        # Cubic interpolation reproduces cubics exactly in the interior.
        x = np.arange(64.0)
        recon = 0.01 * x**3 - 0.2 * x**2 + x
        targets = np.arange(8, 56, 8)[1:-1]
        pred = predict_axis(recon, 0, targets, 4)
        assert np.allclose(pred, recon[targets], atol=1e-9)


class TestErrorBound:
    @pytest.mark.parametrize("eb", [1e-4, 1e-3, 1e-2])
    def test_smooth(self, smooth_field, eb):
        c = SZInterp()
        recon = c.decompress(c.compress(smooth_field, eb, mode="abs"))
        assert np.abs(recon - smooth_field).max() <= eb * (1 + 1e-12)

    def test_rough(self, rough_field):
        c = SZInterp()
        eb_abs = 1e-3 * (rough_field.max() - rough_field.min())
        recon = c.decompress(c.compress(rough_field, 1e-3, mode="rel"))
        assert np.abs(recon - rough_field).max() <= eb_abs * (1 + 1e-12)

    @pytest.mark.parametrize("shape", [(100,), (33, 5), (17, 5, 23), (4, 4, 4)])
    def test_odd_shapes(self, rng, shape):
        data = rng.normal(size=shape)
        c = SZInterp()
        recon = c.decompress(c.compress(data, 0.02, mode="abs"))
        assert recon.shape == shape
        assert np.abs(recon - data).max() <= 0.02 * (1 + 1e-12)

    def test_constant_field(self):
        data = np.zeros((9, 9, 9))
        c = SZInterp()
        recon = c.decompress(c.compress(data, 1e-5, mode="rel"))
        assert np.abs(recon).max() <= 1e-5


class TestBehaviour:
    def test_beats_szlr_on_smooth_data(self, smooth_field):
        from repro.compression.sz_lr import SZLR

        bi = SZInterp().compress(smooth_field, 1e-3, mode="rel")
        bl = SZLR().compress(smooth_field, 1e-3, mode="rel")
        assert len(bi) < len(bl)  # the paper's WarpX finding

    def test_deflate_variant(self, smooth_field):
        c = SZInterp(entropy="deflate")
        recon = c.decompress(c.compress(smooth_field, 1e-3))
        assert np.abs(recon - smooth_field).max() <= 1e-3 * (1 + 1e-12)

    def test_stream_header(self, smooth_field):
        blob = SZInterp().compress(smooth_field, 1e-3)
        reader = StreamReader(blob)
        assert reader.codec == "sz-interp"
        assert "stride" in reader.params

    def test_determinism(self, smooth_field):
        a = SZInterp().compress(smooth_field, 1e-3)
        b = SZInterp().compress(smooth_field, 1e-3)
        assert a == b


class TestValidation:
    def test_bad_entropy(self):
        with pytest.raises(Exception):
            SZInterp(entropy="rle")

    def test_truncated_stream(self, smooth_field):
        blob = SZInterp().compress(smooth_field, 1e-3)
        with pytest.raises(Exception):
            SZInterp().decompress(blob[: len(blob) - 40])

    def test_wrong_codec_rejected(self, smooth_field):
        from repro.compression.sz_lr import SZLR

        blob = SZLR().compress(smooth_field, 1e-3)
        with pytest.raises(DecompressionError):
            SZInterp().decompress(blob)

    def test_inf_rejected(self):
        data = np.ones((8, 8))
        data[3, 3] = np.inf
        with pytest.raises(CompressionError):
            SZInterp().compress(data, 1e-3)
