"""Tests for the ZFP-like transform codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression.zfp_like import ZFPLike, s_transform_forward, s_transform_inverse
from repro.errors import CompressionError


class TestSTransform:
    def test_roundtrip_1d(self, rng):
        q = rng.integers(-(2**30), 2**30, size=(10, 4))
        f = s_transform_forward(q, (1,))
        assert np.array_equal(s_transform_inverse(f, (1,)), q)

    def test_roundtrip_3d(self, rng):
        q = rng.integers(-(2**20), 2**20, size=(7, 4, 4, 4))
        axes = (1, 2, 3)
        assert np.array_equal(s_transform_inverse(s_transform_forward(q, axes), axes), q)

    def test_constant_block_single_coefficient(self):
        q = np.full((1, 4, 4, 4), 100, dtype=np.int64)
        f = s_transform_forward(q, (1, 2, 3))
        assert f[0, 0, 0, 0] == 100
        assert np.count_nonzero(f) == 1

    def test_wrong_length_rejected(self):
        with pytest.raises(CompressionError):
            s_transform_forward(np.zeros((2, 5), dtype=np.int64), (1,))

    @settings(max_examples=40, deadline=None)
    @given(hnp.arrays(np.int64, (3, 4, 4), elements=st.integers(-(2**30), 2**30)))
    def test_roundtrip_property(self, q):
        axes = (1, 2)
        assert np.array_equal(s_transform_inverse(s_transform_forward(q, axes), axes), q)


class TestCodec:
    @pytest.mark.parametrize("eb", [1e-3, 1e-2])
    def test_error_bound(self, smooth_field, eb):
        c = ZFPLike()
        recon = c.decompress(c.compress(smooth_field, eb, mode="abs"))
        assert np.abs(recon - smooth_field).max() <= eb * (1 + 1e-12)

    @pytest.mark.parametrize("shape", [(19,), (9, 13), (10, 11, 12)])
    def test_odd_shapes(self, rng, shape):
        data = rng.normal(size=shape)
        c = ZFPLike()
        recon = c.decompress(c.compress(data, 0.01, mode="abs"))
        assert recon.shape == shape
        assert np.abs(recon - data).max() <= 0.01 * (1 + 1e-12)

    def test_compresses_smooth_data(self, smooth_field):
        c = ZFPLike()
        blob = c.compress(smooth_field, 1e-3, mode="rel")
        assert smooth_field.nbytes / len(blob) > 4

    def test_deflate_variant(self, smooth_field):
        c = ZFPLike(entropy="deflate")
        recon = c.decompress(c.compress(smooth_field, 1e-3))
        assert np.abs(recon - smooth_field).max() <= 1e-3 * (1 + 1e-12)

    def test_bad_entropy_rejected(self):
        with pytest.raises(CompressionError):
            ZFPLike(entropy="bitplane")
