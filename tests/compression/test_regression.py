"""Tests for blockify/unblockify and the block regression predictor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import regression as reg
from repro.errors import CompressionError


class TestBlockify:
    @pytest.mark.parametrize("shape", [(12,), (13,), (12, 18), (7, 8, 9)])
    def test_roundtrip(self, rng, shape):
        arr = rng.normal(size=shape)
        blocks, padded = reg.blockify(arr, 4)
        back = reg.unblockify(blocks, 4, padded, arr.shape)
        assert np.array_equal(back, arr)

    def test_exact_multiple_no_padding(self, rng):
        arr = rng.normal(size=(8, 8))
        blocks, padded = reg.blockify(arr, 4)
        assert padded == (8, 8)
        assert blocks.shape == (4, 16)

    def test_block_raster_order(self):
        arr = np.arange(16.0).reshape(4, 4)
        blocks, _ = reg.blockify(arr, 2)
        # First block is the top-left 2x2 corner.
        assert np.array_equal(blocks[0], [0, 1, 4, 5])
        # Blocks iterate the last axis fastest (C order).
        assert np.array_equal(blocks[1], [2, 3, 6, 7])

    def test_padding_replicates_edge(self):
        arr = np.array([[1.0, 2.0], [3.0, 4.0]])
        blocks, padded = reg.blockify(arr, 3)
        assert padded == (3, 3)
        full = reg.unblockify(blocks, 3, padded, padded)
        assert full[2, 0] == 3.0 and full[0, 2] == 2.0 and full[2, 2] == 4.0

    def test_tiny_block_rejected(self):
        with pytest.raises(CompressionError):
            reg.blockify(np.zeros((4, 4)), 1)


class TestFit:
    def test_exact_affine_recovery(self):
        bs, ndim = 4, 3
        i, j, k = np.meshgrid(*[np.arange(bs, dtype=float)] * 3, indexing="ij")
        block = (2.0 + 0.5 * i - 1.5 * j + 3.0 * k).reshape(1, -1)
        coefs = reg.fit_blocks(block, bs, ndim)
        assert np.allclose(coefs[0], [2.0, 0.5, -1.5, 3.0])

    def test_prediction_matches_affine_data(self):
        bs, ndim = 6, 2
        i, j = np.meshgrid(*[np.arange(bs, dtype=float)] * 2, indexing="ij")
        block = (1.0 + 2.0 * i + 3.0 * j).reshape(1, -1)
        coefs = reg.fit_blocks(block, bs, ndim)
        pred = reg.predict_blocks(coefs, bs, ndim)
        assert np.allclose(pred, block)

    def test_many_blocks_vectorized(self, rng):
        blocks = rng.normal(size=(100, 6**3))
        coefs = reg.fit_blocks(blocks, 6, 3)
        assert coefs.shape == (100, 4)
        # Each row equals the individual lstsq solution.
        one = reg.fit_blocks(blocks[7:8], 6, 3)
        assert np.allclose(coefs[7], one[0])

    def test_constant_block(self):
        block = np.full((1, 4**3), 5.0)
        coefs = reg.fit_blocks(block, 4, 3)
        assert coefs[0, 0] == pytest.approx(5.0)
        assert np.allclose(coefs[0, 1:], 0.0, atol=1e-12)


class TestCoefficientQuantization:
    def test_roundtrip_close(self, rng):
        coefs = rng.normal(size=(10, 4))
        eb = 0.01
        codes = reg.quantize_coefficients(coefs, eb, 6, 3)
        back = reg.dequantize_coefficients(codes, eb, 6, 3)
        pitches = reg.coefficient_pitches(eb, 6, 3)
        assert (np.abs(back - coefs) <= pitches / 2 * (1 + 1e-12)).all()

    def test_slope_pitch_finer_than_intercept(self):
        pitches = reg.coefficient_pitches(0.1, 6, 3)
        assert pitches[0] > pitches[1]
        assert np.allclose(pitches[1:], pitches[1])

    @settings(max_examples=25, deadline=None)
    @given(st.floats(1e-5, 1.0), st.integers(2, 8), st.integers(1, 3))
    def test_quantize_dequantize_bound(self, eb, bs, ndim):
        rng = np.random.default_rng(42)
        coefs = rng.normal(size=(5, 1 + ndim))
        codes = reg.quantize_coefficients(coefs, eb, bs, ndim)
        back = reg.dequantize_coefficients(codes, eb, bs, ndim)
        pitches = reg.coefficient_pitches(eb, bs, ndim)
        assert (np.abs(back - coefs) <= pitches / 2 * (1 + 1e-9)).all()
