"""Tests for the codec registry and stream routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import (
    SZLR,
    available_codecs,
    decompress_any,
    make_codec,
    register_codec,
)
from repro.errors import CompressionError


class TestRegistry:
    def test_builtins_present(self):
        names = available_codecs()
        assert {"sz-lr", "sz-interp", "zfp-like"} <= set(names)

    def test_make_codec(self):
        c = make_codec("sz-lr", block_size=4)
        assert isinstance(c, SZLR)
        assert c.block_size == 4

    def test_unknown_rejected(self):
        with pytest.raises(CompressionError):
            make_codec("sz-9000")

    def test_register_custom(self):
        class Dummy(SZLR):
            name = "dummy-lr"

        register_codec("dummy-lr", Dummy)
        assert "dummy-lr" in available_codecs()
        with pytest.raises(CompressionError):
            register_codec("dummy-lr", Dummy)

    def test_decompress_any_routes(self, smooth_field):
        for name in ("sz-lr", "sz-interp", "zfp-like"):
            blob = make_codec(name).compress(smooth_field, 1e-3)
            recon = decompress_any(blob)
            assert np.abs(recon - smooth_field).max() <= 1e-3 * (1 + 1e-12)

    def test_decompress_any_rejects_unknown_magic(self):
        with pytest.raises(CompressionError, match=r"b'XYZ\\x01'"):
            decompress_any(b"XYZ\x01" + b"\x00" * 32)

    def test_decompress_any_rejects_hierarchy_container(self, sphere_hierarchy):
        # A whole-hierarchy container is not a codec stream; the error must
        # name the magic and point at the right reader.
        from repro.compression import compress_hierarchy

        raw = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-2).tobytes()
        with pytest.raises(CompressionError, match="RPH2"):
            decompress_any(raw)

    def test_decompress_any_rejects_empty(self):
        with pytest.raises(CompressionError, match="magic"):
            decompress_any(b"")
