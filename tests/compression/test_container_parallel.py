"""Parallel determinism: the container is a pure function of its inputs.

Paper §3.3: patches are independent, so per-patch (de)compression is an
order-preserving map. Whatever executor runs the map, the bytes written
and the arrays read back must be identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import flatten_to_uniform
from repro.compression.amr_codec import (
    compress_hierarchy,
    decompress_hierarchy,
    decompress_selection,
)
from repro.errors import ReproError
from repro.parallel import EXECUTION_MODES

MODES = list(EXECUTION_MODES)


class TestCompressDeterminism:
    @pytest.mark.parametrize("codec", ["sz-lr", "sz-interp"])
    def test_byte_identical_across_modes(self, sphere_hierarchy, codec):
        reference = compress_hierarchy(sphere_hierarchy, codec, 1e-3).tobytes()
        for mode in MODES:
            raw = compress_hierarchy(
                sphere_hierarchy, codec, 1e-3, parallel=mode, workers=3
            ).tobytes()
            assert raw == reference, f"{mode} container differs from serial"

    def test_multi_patch_multi_field(self, multi_field_hierarchy):
        blobs = {
            mode: compress_hierarchy(
                multi_field_hierarchy, "sz-lr", 1e-3, parallel=mode, workers=2
            ).tobytes()
            for mode in MODES
        }
        assert blobs["serial"] == blobs["thread"] == blobs["process"]

    def test_exclude_covered_mode_independent(self, sphere_hierarchy):
        reference = compress_hierarchy(
            sphere_hierarchy, "sz-lr", 1e-3, exclude_covered=True
        ).tobytes()
        for mode in ("thread", "process"):
            raw = compress_hierarchy(
                sphere_hierarchy, "sz-lr", 1e-3, exclude_covered=True,
                parallel=mode, workers=2,
            ).tobytes()
            assert raw == reference


class TestDecompressDeterminism:
    def test_roundtrip_mode_independent(self, sphere_hierarchy):
        container = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3)
        reference = flatten_to_uniform(
            decompress_hierarchy(container, sphere_hierarchy), "f"
        )
        for mode in MODES:
            out = decompress_hierarchy(
                container, sphere_hierarchy, parallel=mode, workers=3
            )
            assert np.array_equal(flatten_to_uniform(out, "f"), reference)

    def test_cross_mode_roundtrip(self, sphere_hierarchy):
        # decompress(compress(h)) must not care which mode did which half.
        thread_c = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3, parallel="thread")
        out = decompress_hierarchy(thread_c, sphere_hierarchy, parallel="process", workers=2)
        serial_c = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3)
        ref = decompress_hierarchy(serial_c, sphere_hierarchy)
        assert np.array_equal(
            flatten_to_uniform(out, "f"), flatten_to_uniform(ref, "f")
        )

    def test_selection_mode_independent(self, multi_field_hierarchy):
        raw = compress_hierarchy(multi_field_hierarchy, "sz-lr", 1e-3).tobytes()
        reference = decompress_selection(raw, levels=1, fields="a")
        for mode in MODES:
            got = decompress_selection(raw, levels=1, fields="a", parallel=mode, workers=2)
            assert got.keys() == reference.keys()
            for key in reference:
                assert np.array_equal(got[key], reference[key])


class TestModeValidation:
    def test_unknown_mode_rejected(self, sphere_hierarchy):
        with pytest.raises(ReproError):
            compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3, parallel="gpu")
