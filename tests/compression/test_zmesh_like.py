"""Tests for the zMesh-style 1-D reordering baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.amr_codec import compress_hierarchy
from repro.compression.zmesh_like import ZMeshLike, morton_order, serialize_hierarchy_1d
from repro.errors import CompressionError

from tests.conftest import make_sphere_hierarchy


class TestMortonOrder:
    def test_is_permutation(self):
        for shape in ((4, 4), (3, 5), (2, 3, 4), (7,)):
            order = morton_order(shape)
            assert sorted(order) == list(range(int(np.prod(shape))))

    def test_2x2_z_pattern(self):
        order = morton_order((2, 2))
        # Z-order visits (0,0), (1,0), (0,1), (1,1) with our bit layout.
        coords = [np.unravel_index(i, (2, 2)) for i in order]
        assert coords[0] == (0, 0)
        assert set(coords) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_locality_better_than_raster(self):
        # Mean index-space distance between consecutive visits should be
        # lower than C-order's worst-case row jumps for square arrays.
        shape = (16, 16)
        order = morton_order(shape)
        ij = np.stack(np.unravel_index(order, shape), axis=1).astype(float)
        steps = np.abs(np.diff(ij, axis=0)).sum(axis=1)
        assert steps.mean() < 2.0

    def test_bad_shape_rejected(self):
        with pytest.raises(CompressionError):
            morton_order((0, 4))


class TestSerialize:
    def test_total_length(self):
        h = make_sphere_hierarchy(8)
        flat, layout = serialize_hierarchy_1d(h, "f")
        assert flat.size == h.stored_cells()
        assert len(layout) == sum(len(lev.boxes) for lev in h)


class TestCodec:
    @pytest.fixture(scope="class")
    def hierarchy(self):
        return make_sphere_hierarchy(16)

    @pytest.mark.parametrize("backend", ["sz-lr", "sz-interp"])
    def test_error_bound(self, hierarchy, backend):
        z = ZMeshLike(backend)
        blob = z.compress_hierarchy(hierarchy, "f", 1e-3, mode="rel")
        out = z.decompress_hierarchy(blob, hierarchy, "f")
        flat, _ = serialize_hierarchy_1d(hierarchy, "f")
        eb = 1e-3 * (flat.max() - flat.min())
        for lev_o, lev_r in zip(hierarchy, out):
            for p, q in zip(lev_o.patches("f"), lev_r.patches("f")):
                assert np.abs(p.data - q.data).max() <= eb * (1 + 1e-9)

    def test_template_not_mutated(self, hierarchy):
        z = ZMeshLike()
        before = hierarchy[0].patches("f")[0].data.copy()
        blob = z.compress_hierarchy(hierarchy, "f", 1e-2)
        z.decompress_hierarchy(blob, hierarchy, "f")
        assert np.array_equal(hierarchy[0].patches("f")[0].data, before)

    def test_3d_per_patch_beats_1d_reorder(self, hierarchy):
        """The paper's premise for citing TAC over zMesh (§1)."""
        z = ZMeshLike("sz-lr")
        blob_1d = z.compress_hierarchy(hierarchy, "f", 1e-3, mode="rel")
        c3d = compress_hierarchy(hierarchy, "sz-lr", 1e-3, fields=["f"])
        cr_1d = hierarchy.nbytes("f") / len(blob_1d)
        assert c3d.ratio > cr_1d
