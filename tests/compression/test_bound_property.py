"""Property-based error-bound guarantees across all codecs.

The single most important invariant of the library: for any finite float
data and any positive bound, every codec reconstructs within the bound.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression.registry import available_codecs, make_codec

CODICS = sorted(available_codecs())


def _arrays_3d():
    return hnp.arrays(
        np.float64,
        hnp.array_shapes(min_dims=3, max_dims=3, min_side=2, max_side=10),
        elements=st.floats(-1e5, 1e5, allow_nan=False, allow_infinity=False, width=64),
    )


@pytest.mark.parametrize("codec", CODICS)
class TestBoundProperty:
    @settings(max_examples=25, deadline=None)
    @given(data=_arrays_3d(), eb=st.floats(1e-4, 1.0))
    def test_abs_bound(self, codec, data, eb):
        comp = make_codec(codec)
        recon = comp.decompress(comp.compress(data, eb, mode="abs"))
        # Reconstruction arithmetic is float64, so the guarantee carries an
        # unavoidable ULP-scale slack proportional to the data magnitude
        # (same as reference SZ): eb + O(eps * |value|).
        slack = 16 * np.spacing(np.abs(data).max() + eb)
        assert np.abs(recon - data).max() <= eb * (1 + 1e-9) + slack

    @settings(max_examples=15, deadline=None)
    @given(data=_arrays_3d(), eb=st.sampled_from([1e-4, 1e-3, 1e-2]))
    def test_rel_bound(self, codec, data, eb):
        comp = make_codec(codec)
        recon = comp.decompress(comp.compress(data, eb, mode="rel"))
        value_range = data.max() - data.min()
        eb_abs = eb * value_range if value_range > 0 else eb
        assert np.abs(recon - data).max() <= eb_abs * (1 + 1e-9)

    @settings(max_examples=10, deadline=None)
    @given(data=_arrays_3d())
    def test_deterministic(self, codec, data):
        comp = make_codec(codec)
        assert comp.compress(data, 1e-3) == comp.compress(data, 1e-3)
