"""Property-based error-bound guarantees across all codecs.

The single most important invariant of the library: for any finite float
data and any positive bound, every codec reconstructs within the bound —
both for a bare codec stream and for a whole patch-indexed hierarchy
container round-tripped through its serialized form.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.amr import AMRHierarchy, AMRLevel, Box, BoxArray, Patch
from repro.compression.amr_codec import (
    CompressedHierarchy,
    compress_hierarchy,
    decompress_hierarchy,
)
from repro.compression.registry import available_codecs, make_codec
from repro.errors import CompressionError

CODICS = sorted(available_codecs())


def _arrays_3d():
    return hnp.arrays(
        np.float64,
        hnp.array_shapes(min_dims=3, max_dims=3, min_side=2, max_side=10),
        elements=st.floats(-1e5, 1e5, allow_nan=False, allow_infinity=False, width=64),
    )


@pytest.mark.parametrize("codec", CODICS)
class TestBoundProperty:
    @settings(max_examples=25, deadline=None)
    @given(data=_arrays_3d(), eb=st.floats(1e-4, 1.0))
    def test_abs_bound(self, codec, data, eb):
        comp = make_codec(codec)
        recon = comp.decompress(comp.compress(data, eb, mode="abs"))
        # Reconstruction arithmetic is float64, so the guarantee carries an
        # unavoidable ULP-scale slack proportional to the data magnitude
        # (same as reference SZ): eb + O(eps * |value|).
        slack = 16 * np.spacing(np.abs(data).max() + eb)
        assert np.abs(recon - data).max() <= eb * (1 + 1e-9) + slack

    @settings(max_examples=15, deadline=None)
    @given(data=_arrays_3d(), eb=st.sampled_from([1e-4, 1e-3, 1e-2]))
    def test_rel_bound(self, codec, data, eb):
        comp = make_codec(codec)
        recon = comp.decompress(comp.compress(data, eb, mode="rel"))
        value_range = data.max() - data.min()
        eb_abs = eb * value_range if value_range > 0 else eb
        assert np.abs(recon - data).max() <= eb_abs * (1 + 1e-9)

    @settings(max_examples=10, deadline=None)
    @given(data=_arrays_3d())
    def test_deterministic(self, codec, data):
        comp = make_codec(codec)
        assert comp.compress(data, 1e-3) == comp.compress(data, 1e-3)


# ----------------------------------------------------------------------
# Container level: the same guarantee must survive per-patch packaging,
# serialization to the indexed RPH2 format, and parsing back.
# ----------------------------------------------------------------------
def _hierarchy_from(arrays: dict[str, np.ndarray]) -> AMRHierarchy:
    """Single-level hierarchy holding ``arrays`` as one patch each."""
    shape = next(iter(arrays.values())).shape
    dom = Box.from_shape(shape)
    level = AMRLevel(0, BoxArray([dom]), (1.0,) * len(shape))
    for name, data in arrays.items():
        level.add_field(name, [Patch(dom, data)])
    return AMRHierarchy(dom, [level], 2)


def _try_compress(h, codec, eb, mode):
    """Compress, rejecting examples a codec legitimately refuses (e.g. the
    quantizer's value/bound dynamic-range limit) — that contract is covered
    by the codec's own tests, not the container's."""
    try:
        return compress_hierarchy(h, codec, eb, mode=mode)
    except CompressionError as exc:
        assume("increase the error bound" not in str(exc))
        raise


def _container_fields():
    """1-3 random fields of a shared random 3-D shape and random dtype."""
    return st.tuples(
        hnp.array_shapes(min_dims=3, max_dims=3, min_side=2, max_side=8),
        st.sampled_from([np.float32, np.float64]),
        st.integers(1, 3),
        st.randoms(use_true_random=False),
    ).map(
        lambda t: {
            f"f{i}": (
                t[3].uniform(-1.0, 1.0)
                * np.arange(int(np.prod(t[0])), dtype=t[1]).reshape(t[0])
                + t[3].uniform(-100.0, 100.0)
            )
            for i in range(t[2])
        }
    )


@pytest.mark.parametrize("codec", CODICS)
class TestContainerBoundProperty:
    @settings(max_examples=10, deadline=None)
    @given(fields=_container_fields(), eb=st.floats(1e-4, 1.0),
           mode=st.sampled_from(["abs", "rel"]))
    def test_container_roundtrip_bound(self, codec, fields, eb, mode):
        h = _hierarchy_from(fields)
        container = _try_compress(h, codec, eb, mode)
        parsed = CompressedHierarchy.frombytes(container.tobytes())
        out = decompress_hierarchy(parsed, h)
        for name, data in fields.items():
            ref = data.astype(np.float64)
            if mode == "abs":
                eb_abs = eb
            else:
                rng = float(ref.max() - ref.min())
                eb_abs = eb * rng if rng > 0 else eb
            recon = out[0].patches(name)[0].data
            # ULP slack in the *input* dtype: float32 fields carry float32
            # representational granularity through the codec arithmetic.
            slack = 16 * float(
                np.spacing(np.asarray(np.abs(ref).max() + eb_abs, dtype=data.dtype))
            )
            assert np.abs(recon - ref).max() <= eb_abs * (1 + 1e-9) + slack

    @settings(max_examples=10, deadline=None)
    @given(fields=_container_fields(), eb=st.sampled_from([1e-4, 1e-3, 1e-2]))
    def test_metadata_exact_roundtrip(self, codec, fields, eb):
        h = _hierarchy_from(fields)
        container = _try_compress(h, codec, eb, "rel")
        parsed = CompressedHierarchy.frombytes(container.tobytes())
        assert parsed.codec == container.codec
        assert parsed.error_bound == container.error_bound
        assert parsed.mode == container.mode
        assert parsed.fields == container.fields
        assert parsed.exclude_covered == container.exclude_covered
        assert parsed.original_bytes == container.original_bytes
        assert parsed.streams == container.streams
        # Serialization is a pure function of the parsed state.
        assert parsed.tobytes() == container.tobytes()
