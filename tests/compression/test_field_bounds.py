"""Per-field error-bound overrides across every writer/reader surface.

``field_bounds`` lets mixed-physics campaigns compress different fields
under different bounds (the WarpX E/B scenario). These tests pin the
contract at each layer: validation, the batch compressor (both batch
modes), container metadata round-trip, byte-stability of single-bound
output, the streaming writer (create/append_to), and the sharded
campaign's manifest.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.compression import CompressedHierarchy, compress_hierarchy, decompress_hierarchy
from repro.compression.amr_codec import resolve_patch_codec, validate_field_bounds
from repro.compression.container import ContainerReader
from repro.errors import CompressionError
from repro.insitu import StreamingWriter
from repro.insitu.series import SeriesReader
from repro.insitu.sharded import ShardedSeriesReader, ShardedSeriesWriter
from repro.sims import WarpXConfig, warpx_hierarchy


@pytest.fixture(scope="module")
def hierarchy():
    return warpx_hierarchy(WarpXConfig(nx=12, nz=48, seed=5))


BOUNDS = {"Ez": 1e-4, "rho": 1e-2}


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_validate_normalizes_and_accepts_known_fields():
    assert validate_field_bounds(None, ("a",)) == {}
    assert validate_field_bounds({}, None) == {}
    assert validate_field_bounds({"a": 1e-3}, ("a", "b")) == {"a": 1e-3}
    # Unknown field set: any names accepted (validated later on adoption).
    assert validate_field_bounds({"x": 0.5}, None) == {"x": 0.5}


@pytest.mark.parametrize("bad", [0.0, -1e-3, float("nan"), float("inf")])
def test_validate_rejects_non_positive_or_non_finite(bad):
    with pytest.raises(CompressionError, match="positive finite"):
        validate_field_bounds({"a": bad}, ("a",))


def test_validate_rejects_unknown_field_names():
    with pytest.raises(CompressionError, match="unknown fields"):
        validate_field_bounds({"ghost": 1e-3}, ("a", "b"))


def test_compress_hierarchy_rejects_bounds_for_absent_field(hierarchy):
    with pytest.raises(CompressionError, match="unknown fields"):
        compress_hierarchy(hierarchy, "sz-lr", 1e-3, fields=["Ez"], field_bounds={"rho": 1e-2})


# ----------------------------------------------------------------------
# Batch compressor
# ----------------------------------------------------------------------
@pytest.mark.parametrize("batch", ["patch", "level"])
def test_per_field_bounds_are_honoured(hierarchy, batch):
    comp = resolve_patch_codec("sz-lr")
    c = compress_hierarchy(
        hierarchy, "sz-lr", 1e-3, field_bounds=BOUNDS, batch=batch
    )
    restored = decompress_hierarchy(c, hierarchy)
    for name in hierarchy.field_names:
        eb = BOUNDS.get(name, 1e-3)
        for lev in range(hierarchy.n_levels):
            for orig, rest in zip(
                hierarchy[lev].patches(name), restored[lev].patches(name)
            ):
                eb_abs = comp.resolve_error_bound(orig.data, eb, "rel")
                assert float(np.abs(orig.data - rest.data).max()) <= eb_abs * (1 + 1e-12)


def test_override_changes_only_named_fields(hierarchy):
    plain = compress_hierarchy(hierarchy, "sz-lr", 1e-3)
    mixed = compress_hierarchy(hierarchy, "sz-lr", 1e-3, field_bounds={"Ez": 1e-4})
    assert mixed.streams[0]["Ez"][0] != plain.streams[0]["Ez"][0]
    assert mixed.streams[0]["Ex"][0] == plain.streams[0]["Ex"][0]


def test_container_roundtrips_field_bounds(hierarchy):
    c = compress_hierarchy(hierarchy, "sz-lr", 1e-3, field_bounds=BOUNDS)
    blob = c.tobytes()
    reader = ContainerReader(blob)
    assert reader.field_bounds == BOUNDS
    assert CompressedHierarchy.frombytes(blob).field_bounds == BOUNDS


def test_single_bound_bytes_unchanged(hierarchy):
    """No overrides -> no ``field_bounds`` key: old container bytes exact."""
    blob = compress_hierarchy(hierarchy, "sz-lr", 1e-3).tobytes()
    assert b"field_bounds" not in blob
    assert ContainerReader(blob).field_bounds == {}


# ----------------------------------------------------------------------
# Streaming writer
# ----------------------------------------------------------------------
def test_streaming_writer_records_and_restores_bounds(hierarchy, tmp_path):
    path = tmp_path / "series.rph2s"
    with StreamingWriter.create(path, "sz-lr", 1e-3, field_bounds=BOUNDS) as w:
        assert w.field_bounds == BOUNDS
        w.append_step(hierarchy, time=0.0, step=0)
    with SeriesReader.open(path) as reader:
        assert reader.field_bounds == BOUNDS
    # append_to restores the overrides from the series meta.
    w2 = StreamingWriter.append_to(path)
    try:
        assert w2.field_bounds == BOUNDS
        w2.append_step(hierarchy, time=1.0, step=1)
    finally:
        w2.close()
    with SeriesReader.open(path) as reader:
        assert reader.field_bounds == BOUNDS
        assert reader.n_steps == 2


def test_streaming_segment_matches_batch_bytes(hierarchy):
    """Canonical-order streaming stays byte-identical to the batch path
    under per-field bounds (the writer's core identity, extended)."""
    batch = compress_hierarchy(hierarchy, "sz-lr", 1e-3, field_bounds=BOUNDS).tobytes()
    buf = io.BytesIO()
    with StreamingWriter(buf, "sz-lr", 1e-3, field_bounds=BOUNDS) as w:
        w.append_step(hierarchy, time=0.0, step=0)
    with SeriesReader(buf.getvalue()) as reader:
        entry = reader.entry(0)
        segment = buf.getvalue()[entry.offset : entry.offset + entry.length]
    assert segment == batch


def test_streaming_writer_rejects_unknown_override(tmp_path):
    with pytest.raises(CompressionError, match="unknown fields"):
        StreamingWriter.create(
            tmp_path / "bad.rph2s", "sz-lr", 1e-3,
            fields=("Ez",), field_bounds={"rho": 1e-2},
        )


def test_single_bound_series_bytes_unchanged(hierarchy, tmp_path):
    path = tmp_path / "plain.rph2s"
    with StreamingWriter.create(path, "sz-lr", 1e-3) as w:
        w.append_step(hierarchy, time=0.0, step=0)
    assert b"field_bounds" not in path.read_bytes()


# ----------------------------------------------------------------------
# Sharded campaigns
# ----------------------------------------------------------------------
def test_sharded_campaign_carries_field_bounds(hierarchy, tmp_path):
    manifest = tmp_path / "camp.rphm"
    w = ShardedSeriesWriter.create(
        manifest, "sz-lr", 1e-3, n_shards=2, parallel="serial",
        field_bounds=BOUNDS,
    )
    for i in range(3):
        w.append_step(hierarchy, time=float(i), step=i)
    w.close()
    with ShardedSeriesReader.open(manifest) as reader:
        assert reader.field_bounds == BOUNDS
    # Every shard's own footer carries the bounds too (salvage-safe).
    for shard in sorted(tmp_path.glob("camp.shard*.rph2s")):
        with SeriesReader.open(shard) as sr:
            assert sr.field_bounds == BOUNDS


def test_sharded_single_bound_manifest_unchanged(hierarchy, tmp_path):
    manifest = tmp_path / "plain.rphm"
    w = ShardedSeriesWriter.create(manifest, "sz-lr", 1e-3, n_shards=2, parallel="serial")
    w.append_step(hierarchy, time=0.0, step=0)
    w.close()
    assert b"field_bounds" not in manifest.read_bytes()
