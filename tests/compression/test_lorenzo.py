"""Tests for the integer Lorenzo transform."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression.lorenzo import lorenzo_forward, lorenzo_inverse
from repro.errors import CompressionError


class TestRoundtrip:
    @pytest.mark.parametrize("shape", [(17,), (9, 13), (5, 6, 7)])
    def test_inverse_identity(self, rng, shape):
        q = rng.integers(-(2**30), 2**30, size=shape)
        assert np.array_equal(lorenzo_inverse(lorenzo_forward(q)), q)

    def test_restricted_axes(self, rng):
        q = rng.integers(-100, 100, size=(4, 5, 6))
        # Transform the trailing two axes only (batched use).
        f = lorenzo_forward(q, axes=(1, 2))
        assert np.array_equal(lorenzo_inverse(f, axes=(1, 2)), q)
        # Batches must be independent: transforming one batch alone matches.
        f0 = lorenzo_forward(q[0], axes=(0, 1))
        assert np.array_equal(f[0], f0)

    def test_float_rejected(self):
        with pytest.raises(CompressionError):
            lorenzo_forward(np.zeros(4))
        with pytest.raises(CompressionError):
            lorenzo_inverse(np.zeros(4))


class TestSemantics:
    def test_1d_is_first_difference(self):
        q = np.array([3, 5, 4, 4], dtype=np.int64)
        f = lorenzo_forward(q)
        assert np.array_equal(f, [3, 2, -1, 0])

    def test_constant_field_sparse(self):
        q = np.full((6, 6, 6), 42, dtype=np.int64)
        f = lorenzo_forward(q)
        assert f[0, 0, 0] == 42
        assert np.count_nonzero(f) == 1

    def test_linear_ramp_two_nonzero_per_axis(self):
        i = np.arange(8, dtype=np.int64)
        f = lorenzo_forward(i)
        assert f[0] == 0 and (f[1:] == 1).all()

    def test_2d_lorenzo_residual_formula(self):
        rng = np.random.default_rng(0)
        q = rng.integers(-50, 50, size=(5, 5))
        f = lorenzo_forward(q)
        # Interior: residual = q[i,j] - q[i-1,j] - q[i,j-1] + q[i-1,j-1].
        i, j = 3, 2
        expected = q[i, j] - q[i - 1, j] - q[i, j - 1] + q[i - 1, j - 1]
        assert f[i, j] == expected


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        hnp.arrays(
            np.int64,
            hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8),
            elements=st.integers(-(2**40), 2**40),
        )
    )
    def test_roundtrip_property(self, q):
        assert np.array_equal(lorenzo_inverse(lorenzo_forward(q)), q)

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(np.int64, (4, 4), elements=st.integers(-1000, 1000)),
        hnp.arrays(np.int64, (4, 4), elements=st.integers(-1000, 1000)),
    )
    def test_linearity(self, a, b):
        lhs = lorenzo_forward(a + b)
        rhs = lorenzo_forward(a) + lorenzo_forward(b)
        assert np.array_equal(lhs, rhs)
