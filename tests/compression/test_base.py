"""Tests for the stream container and Compressor helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.base import Compressor, CompressionStats, StreamReader, StreamWriter
from repro.errors import CompressionError, FormatError


class TestStreamContainer:
    def test_roundtrip(self):
        w = StreamWriter("test", (4, 5), np.dtype(np.float64), {"eb": 0.5})
        w.add_section("alpha", b"12345")
        w.add_section("beta", b"")
        blob = w.tobytes()
        r = StreamReader(blob)
        assert r.codec == "test"
        assert r.shape == (4, 5)
        assert r.dtype == np.float64
        assert r.params == {"eb": 0.5}
        assert r.section("alpha") == b"12345"
        assert r.section("beta") == b""

    def test_missing_section(self):
        w = StreamWriter("t", (1,), np.dtype(np.float64), {})
        r = StreamReader(w.tobytes())
        with pytest.raises(FormatError):
            r.section("nope")

    def test_bad_magic(self):
        with pytest.raises(FormatError):
            StreamReader(b"NOPE" + b"\x00" * 20)

    def test_truncated_section(self):
        w = StreamWriter("t", (1,), np.dtype(np.float64), {})
        w.add_section("s", b"abcdef")
        blob = w.tobytes()
        with pytest.raises(FormatError):
            StreamReader(blob[:-3])

    def test_tiny_blob(self):
        with pytest.raises(FormatError):
            StreamReader(b"RP")


class TestResolveErrorBound:
    def test_abs_passthrough(self):
        assert Compressor.resolve_error_bound(np.zeros(3), 0.5, "abs") == 0.5

    def test_rel_scales_with_range(self):
        data = np.array([0.0, 10.0])
        assert Compressor.resolve_error_bound(data, 0.01, "rel") == pytest.approx(0.1)

    def test_rel_constant_data(self):
        assert Compressor.resolve_error_bound(np.full(4, 2.0), 0.01, "rel") == 0.01

    def test_bad_mode(self):
        with pytest.raises(CompressionError):
            Compressor.resolve_error_bound(np.zeros(2), 0.1, "psnr")

    def test_nonpositive_bound(self):
        with pytest.raises(CompressionError):
            Compressor.resolve_error_bound(np.zeros(2), -0.1, "abs")


class TestStats:
    def test_ratio_and_bitrate(self):
        s = CompressionStats("c", 8000, 1000, 1e-3, {})
        assert s.ratio == 8.0
        assert s.bitrate == pytest.approx(8.0)

    def test_zero_compressed_rejected(self):
        with pytest.raises(CompressionError):
            _ = CompressionStats("c", 100, 0, 1e-3, {}).ratio
