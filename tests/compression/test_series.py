"""Tests for the RPH2S time-series container (repro.insitu).

Covers the streaming write protocol, random access through the timestep
index, byte-equivalence with the batch compressor, and the corruption
contract: truncated segments, a corrupt timestep index, and mixed-version
segment rejection must all surface as named FormatErrors, never as silent
garbage.
"""

from __future__ import annotations

import io
import json
import struct
import zlib

import numpy as np
import pytest

from repro.amr.io import append_step, open_series, write_series
from repro.compression.amr_codec import compress_hierarchy, decompress_selection
from repro.errors import CompressionError, FormatError
from repro.insitu import SeriesReader, StreamingWriter
from tests.conftest import make_sphere_hierarchy

_FOOTER = struct.Struct("<QQI8s")


def make_steps(n: int = 3):
    """n small two-level hierarchies with step-dependent data."""
    base = make_sphere_hierarchy(8)
    return [
        base.map_fields(lambda lev, name, d, i=i: d * (1.0 + 0.25 * i))
        for i in range(n)
    ]


@pytest.fixture()
def series_path(tmp_path):
    path = tmp_path / "run.rph2s"
    write_series(path, make_steps(3), codec="sz-lr", error_bound=1e-3)
    return path


def _split(raw: bytes):
    """(payload, index_bytes) of a series file, straight from the footer."""
    idx_off, idx_len, _, magic = _FOOTER.unpack_from(raw, len(raw) - _FOOTER.size)
    assert magic == b"RPH2SIDX"
    return raw[:idx_off], raw[idx_off : idx_off + idx_len]


def _join(payload: bytes, index_bytes: bytes) -> bytes:
    """Reassemble a series file with a fresh, consistent footer."""
    return payload + index_bytes + _FOOTER.pack(
        len(payload), len(index_bytes), zlib.crc32(index_bytes), b"RPH2SIDX"
    )


class CountingBytesIO(io.BytesIO):
    def __init__(self, raw: bytes):
        super().__init__(raw)
        self.bytes_read = 0

    def read(self, size=-1):
        out = super().read(size)
        self.bytes_read += len(out)
        return out


class TestRoundtrip:
    def test_streamed_series_reads_back(self, series_path):
        steps = make_steps(3)
        with open_series(series_path) as reader:
            assert reader.steps == (0, 1, 2)
            assert reader.fields == ("f",)
            assert reader.codec == "sz-lr"
            for i, h in enumerate(steps):
                got = reader.read_patch(i, 1, "f", 0)
                want = h[1].patches("f")[0].data
                eb = 1e-3 * (want.max() - want.min())
                assert np.abs(got - want).max() <= eb * (1 + 1e-9)

    def test_segments_byte_identical_to_batch(self, series_path):
        raw = series_path.read_bytes()
        with open_series(series_path) as reader:
            for i, h in enumerate(make_steps(3)):
                batch = compress_hierarchy(h, "sz-lr", 1e-3).tobytes()
                e = reader.entry(i)
                assert raw[e.offset : e.offset + e.length] == batch

    def test_parallel_modes_byte_identical(self, tmp_path):
        steps = make_steps(2)
        a = tmp_path / "serial.rph2s"
        b = tmp_path / "thread.rph2s"
        write_series(a, steps, parallel="serial")
        write_series(b, steps, parallel="thread", workers=3)
        assert a.read_bytes() == b.read_bytes()

    def test_exclude_covered_matches_batch(self, tmp_path):
        h = make_sphere_hierarchy(8)
        path = tmp_path / "ec.rph2s"
        with StreamingWriter.create(path, "sz-lr", 1e-3, exclude_covered=True) as w:
            w.append_step(h)
        batch = compress_hierarchy(h, "sz-lr", 1e-3, exclude_covered=True).tobytes()
        with open_series(path) as reader:
            e = reader.entry(0)
            assert reader.exclude_covered
        assert path.read_bytes()[e.offset : e.offset + e.length] == batch

    def test_empty_series_valid(self, tmp_path):
        path = tmp_path / "empty.rph2s"
        with StreamingWriter.create(path, "sz-lr", 1e-3, fields=["f"]):
            pass
        with open_series(path) as reader:
            assert reader.n_steps == 0
            assert reader.select() == {}


class TestStepProtocol:
    def test_incremental_patch_feed(self, tmp_path):
        """Patches fed out of field order still index deterministically."""
        h = make_sphere_hierarchy(8)
        path = tmp_path / "inc.rph2s"
        with StreamingWriter.create(path, "sz-lr", 1e-3) as w:
            w.begin_step(time=0.5)
            for lev_idx, lev in enumerate(h):
                for patch in lev.patches("f"):
                    w.add_patch(lev_idx, "f", patch.data)
            entry = w.end_step()
        assert entry.n_patches == 2 and entry.n_levels == 2
        with open_series(path) as reader:
            assert reader.times == (0.5,)
            got = reader.read_patch(0, 0, "f", 0)
            assert got.shape == h[0].patches("f")[0].data.shape

    def test_monotone_step_numbers_enforced(self, tmp_path):
        h = make_sphere_hierarchy(8)
        with StreamingWriter.create(tmp_path / "m.rph2s", "sz-lr", 1e-3) as w:
            w.append_step(h, step=5)
            with pytest.raises(CompressionError, match="strictly increasing"):
                w.begin_step(step=5)
            w.append_step(h, step=9)
            assert w.next_step == 10

    def test_empty_step_rejected(self, tmp_path):
        with StreamingWriter.create(tmp_path / "e.rph2s", "sz-lr", 1e-3) as w:
            w.begin_step()
            with pytest.raises(CompressionError, match="empty timestep"):
                w.end_step()
            w.append_step(make_sphere_hierarchy(8))  # writer still usable

    def test_field_drift_rejected(self, tmp_path):
        with StreamingWriter.create(tmp_path / "d.rph2s", "sz-lr", 1e-3) as w:
            w.begin_step()
            w.add_patch(0, "f", np.ones((8, 8, 8)))
            w.end_step()
            w.begin_step()
            with pytest.raises(CompressionError, match="not part of this series"):
                w.add_patch(0, "g", np.ones((8, 8, 8)))
            w.add_patch(0, "f", np.ones((8, 8, 8)))
            w.end_step()

    def test_close_with_open_step_rejected(self, tmp_path):
        w = StreamingWriter.create(tmp_path / "o.rph2s", "sz-lr", 1e-3)
        w.begin_step()
        w.add_patch(0, "f", np.ones((8, 8, 8)))
        with pytest.raises(CompressionError, match="open step"):
            w.close()
        w.end_step()
        w.close()
        w.close()  # idempotent

    def test_append_to_bad_args_preserve_series(self, series_path):
        before = series_path.read_bytes()
        with pytest.raises(CompressionError, match="unknown execution mode"):
            StreamingWriter.append_to(series_path, parallel="bogus")
        # A rejected append must not destroy a valid series.
        assert series_path.read_bytes() == before
        with open_series(series_path) as reader:
            assert reader.steps == (0, 1, 2)

    def test_field_mismatch_rejected_before_writing(self, series_path):
        from repro.amr import AMRHierarchy, AMRLevel, Box, BoxArray, Patch

        before = series_path.read_bytes()
        dom = Box.from_shape((8, 8, 8))
        lev = AMRLevel(0, BoxArray([dom]), (1.0,) * 3,
                       {"g": [Patch(dom, np.ones((8, 8, 8)))]})
        wrong_field = AMRHierarchy(dom, [lev], 2)
        with StreamingWriter.append_to(series_path) as w:
            with pytest.raises(CompressionError, match="series carries"):
                w.append_step(wrong_field, fields=["g"])
            assert w.n_steps == 3  # nothing half-written
        # Rejected before begin_step: no orphaned segment bytes, and the
        # rewritten index/footer are byte-identical to the original.
        assert series_path.read_bytes() == before

    def test_exit_releases_resources_on_forgotten_end_step(self, tmp_path):
        path = tmp_path / "leak.rph2s"
        with pytest.raises(CompressionError, match="open step"):
            with StreamingWriter.create(path, "sz-lr", 1e-3) as w:
                w.begin_step()
                w.add_patch(0, "f", np.ones((8, 8, 8)))
                # end_step forgotten: close() raises, __exit__ must still
                # release the pool and file handle.
        assert w._closed and w._file.closed

    def test_append_to_extends_series(self, series_path):
        h = make_steps(1)[0]
        entry = append_step(series_path, h, time=7.5)
        assert entry.step == 3 and entry.time == 7.5
        with open_series(series_path) as reader:
            assert reader.steps == (0, 1, 2, 3)
            # Old segments untouched, new step readable.
            reader.verify_step(0)
            assert reader.read_patch(3, 0, "f", 0).shape == (8, 8, 8)


class TestSelection:
    def test_select_keys_are_step_tuples(self, series_path):
        sel = decompress_selection(series_path, steps=1, levels=1)
        assert list(sel) == [(1, 1, "f", 0)]
        full = decompress_selection(series_path)
        assert len(full) == 6  # 3 steps x 2 patches
        assert np.array_equal(sel[(1, 1, "f", 0)], full[(1, 1, "f", 0)])

    def test_select_from_bytes_and_reader(self, series_path):
        raw = series_path.read_bytes()
        by_bytes = decompress_selection(raw, steps=[0, 2], patches=0, levels=0)
        assert sorted(by_bytes) == [(0, 0, "f", 0), (2, 0, "f", 0)]
        with open_series(series_path) as reader:
            by_reader = decompress_selection(reader, steps=[0, 2], patches=0, levels=0)
        for key in by_bytes:
            assert np.array_equal(by_bytes[key], by_reader[key])

    def test_missing_step_named(self, series_path):
        with open_series(series_path) as reader:
            with pytest.raises(FormatError, match="no step 42"):
                reader.read_patch(42, 0, "f", 0)

    def test_single_patch_reads_o_selection_bytes(self, series_path):
        raw = series_path.read_bytes()
        # Expected read footprint, derived from the real layout.
        with open_series(series_path) as plain:
            seg = plain.open_step(1)
            stream_len = seg.entry(1, "f", 0).length
            seg_index_len = plain.entry(1).length - seg._payload_end - 28
        counting = CountingBytesIO(raw)
        reader = SeriesReader(counting)
        series_overhead = counting.bytes_read  # header + footer + series index
        out = reader.read_patch(1, 1, "f", 0)
        consumed = counting.bytes_read - series_overhead
        assert out.shape == (8, 16, 16)
        # segment header (5) + segment footer (28) + segment index + stream
        assert consumed == 5 + 28 + seg_index_len + stream_len
        assert counting.bytes_read < len(raw) / 2  # and far below O(file)


class TestCorruption:
    def test_truncated_segment_detected(self, series_path):
        payload, index_bytes = _split(series_path.read_bytes())
        # Cut past the trailing 64-byte seal record and into the last
        # segment proper, so the index row points outside the payload.
        with pytest.raises(FormatError, match="outside the payload"):
            SeriesReader(io.BytesIO(_join(payload[:-80], index_bytes)))

    def test_bad_timestep_index_crc(self, series_path):
        raw = bytearray(series_path.read_bytes())
        idx_off, _, _, _ = _FOOTER.unpack_from(raw, len(raw) - _FOOTER.size)
        raw[idx_off + 4] ^= 0xFF  # flip a byte inside the series index
        with pytest.raises(FormatError, match="index checksum mismatch"):
            SeriesReader(io.BytesIO(bytes(raw)))

    def test_mixed_version_segments_rejected(self, series_path):
        payload, index_bytes = _split(series_path.read_bytes())
        index = json.loads(index_bytes.decode())
        index["steps"][1][4] = 2  # one segment claims container version 2
        tampered = json.dumps(index, separators=(",", ":")).encode()
        with pytest.raises(FormatError, match="mixed segment container versions"):
            SeriesReader(io.BytesIO(_join(payload, tampered)))

    def test_uniform_unknown_version_rejected(self, series_path):
        payload, index_bytes = _split(series_path.read_bytes())
        index = json.loads(index_bytes.decode())
        for row in index["steps"]:
            row[4] = 2
        tampered = json.dumps(index, separators=(",", ":")).encode()
        with pytest.raises(FormatError, match="unsupported segment container version"):
            SeriesReader(io.BytesIO(_join(payload, tampered)))

    def test_segment_bitflip_caught_by_stream_crc(self, series_path):
        raw = bytearray(series_path.read_bytes())
        with open_series(series_path) as reader:
            e = reader.entry(0)
        raw[e.offset + 40] ^= 0x01  # inside step 0's payload
        reader = SeriesReader(io.BytesIO(bytes(raw)))
        with pytest.raises(FormatError):
            reader.read_patch(0, 0, "f", 0)
        # Other steps are unaffected: corruption is localized.
        assert reader.read_patch(1, 0, "f", 0).shape == (8, 8, 8)

    def test_verify_step_sweeps_whole_segment(self, series_path):
        raw = bytearray(series_path.read_bytes())
        with open_series(series_path) as reader:
            e = reader.entry(2)
        raw[e.offset + e.length - 3] ^= 0x10  # inside step 2's own footer
        reader = SeriesReader(io.BytesIO(bytes(raw)))
        with pytest.raises(FormatError, match="segment checksum mismatch"):
            reader.verify_step(2)
        reader.verify_step(0)
        reader.verify_step(1)

    def test_truncated_footer(self, series_path):
        raw = series_path.read_bytes()
        with pytest.raises(FormatError, match="footer magic"):
            SeriesReader(io.BytesIO(raw[:-7]))

    def test_not_a_series(self):
        with pytest.raises(FormatError, match="not an RPH2S series"):
            SeriesReader(io.BytesIO(b"NOPE" + b"\x00" * 64))

    def test_snapshot_reader_points_to_series_api(self, series_path):
        from repro.compression.container import ContainerReader

        with pytest.raises(FormatError, match="RPH2S time-series"):
            ContainerReader(io.BytesIO(series_path.read_bytes()))
