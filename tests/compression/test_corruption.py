"""Failure injection: corrupted streams must raise, never hang or crash.

Every byte-flip / truncation of a compressed stream must surface as a
:class:`repro.errors.ReproError` subclass (or a controlled ValueError from
NumPy reshape checks) — never a segfault-style crash, silent wrong data of
the wrong shape, or an unbounded loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.registry import available_codecs, make_codec
from repro.errors import ReproError


@pytest.fixture(scope="module")
def payloads(request):
    rng = np.random.default_rng(0)
    data = np.cumsum(rng.normal(size=(12, 12, 12)), axis=0)
    out = {}
    for name in available_codecs():
        codec = make_codec(name)
        out[name] = (data, codec.compress(data, 1e-3, mode="rel"))
    return out


ACCEPTABLE = (ReproError, ValueError, KeyError, OverflowError, MemoryError)


def _try_decode(name: str, blob: bytes, original: np.ndarray) -> None:
    """Decode must either raise a controlled error or return plausibly."""
    codec = make_codec(name)
    try:
        out = codec.decompress(blob)
    except ACCEPTABLE:
        return
    # A flip inside the payload may decode "successfully"; then the result
    # must still have the right shape/dtype (metadata robustness).
    assert out.shape == original.shape
    assert out.dtype == original.dtype


@pytest.mark.parametrize("codec_name", sorted(available_codecs()))
class TestCorruption:
    def test_truncations(self, payloads, codec_name):
        data, blob = payloads[codec_name]
        for cut in (1, len(blob) // 4, len(blob) // 2, len(blob) - 1):
            _try_decode(codec_name, blob[:cut], data)

    def test_byte_flips(self, payloads, codec_name):
        data, blob = payloads[codec_name]
        rng = np.random.default_rng(7)
        for _ in range(30):
            pos = int(rng.integers(0, len(blob)))
            corrupted = bytearray(blob)
            corrupted[pos] ^= 0xFF
            _try_decode(codec_name, bytes(corrupted), data)

    def test_empty_and_garbage(self, payloads, codec_name):
        data, _ = payloads[codec_name]
        for junk in (b"", b"\x00" * 64, b"RPRC" + b"\xff" * 64):
            with pytest.raises(ACCEPTABLE):
                make_codec(codec_name).decompress(junk)

    def test_header_swap_rejected(self, payloads, codec_name):
        # A stream re-labeled with another codec's name must be rejected.
        data, blob = payloads[codec_name]
        for other in available_codecs():
            if other == codec_name:
                continue
            with pytest.raises(ACCEPTABLE):
                make_codec(other).decompress(blob)
