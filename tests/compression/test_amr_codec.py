"""Tests for AMR-aware hierarchy compression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import flatten_to_uniform
from repro.compression.amr_codec import (
    CompressedHierarchy,
    average_down,
    compress_hierarchy,
    decompress_hierarchy,
)
from repro.errors import CompressionError


class TestRoundtrip:
    @pytest.mark.parametrize("codec", ["sz-lr", "sz-interp", "zfp-like"])
    def test_error_bound_per_patch(self, sphere_hierarchy, codec):
        container = compress_hierarchy(sphere_hierarchy, codec, 1e-3, mode="rel")
        out = decompress_hierarchy(container, sphere_hierarchy)
        for lev_o, lev_r in zip(sphere_hierarchy, out):
            for p, q in zip(lev_o.patches("f"), lev_r.patches("f")):
                eb = 1e-3 * (p.data.max() - p.data.min())
                assert np.abs(p.data - q.data).max() <= eb * (1 + 1e-9)

    def test_ratio_positive(self, sphere_hierarchy):
        container = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-2)
        assert container.ratio > 1.0

    def test_field_subset(self, multi_field_hierarchy):
        container = compress_hierarchy(multi_field_hierarchy, "sz-lr", 1e-3, fields=["a"])
        out = decompress_hierarchy(container, multi_field_hierarchy)
        # Field b copied from template verbatim.
        assert np.array_equal(
            out[0].patches("b")[0].data, multi_field_hierarchy[0].patches("b")[0].data
        )

    def test_unknown_field_rejected(self, sphere_hierarchy):
        with pytest.raises(CompressionError):
            compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3, fields=["nope"])

    def test_codec_instance_accepted(self, sphere_hierarchy):
        from repro.compression.sz_lr import SZLR

        container = compress_hierarchy(sphere_hierarchy, SZLR(block_size=4), 1e-3)
        out = decompress_hierarchy(container, sphere_hierarchy)
        assert out.n_levels == 2


class TestExcludeCovered:
    def test_improves_ratio_on_structured_data(self, sphere_hierarchy):
        plain = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-4)
        excl = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-4, exclude_covered=True)
        # Covered half of the coarse level becomes a constant: never worse.
        assert excl.compressed_bytes <= plain.compressed_bytes

    def test_exposed_coarse_data_still_bounded(self, sphere_hierarchy):
        container = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3, exclude_covered=True)
        out = decompress_hierarchy(container, sphere_hierarchy)
        covered = sphere_hierarchy.covered_mask(0)
        orig = sphere_hierarchy[0].patches("f")[0].data
        recon = out[0].patches("f")[0].data
        # The filled region carries no guarantee, but exposed cells must.
        eb = 1e-3 * (np.ptp(orig))  # compressed patch had filled values;
        exposed_err = np.abs(orig - recon)[~covered]
        assert exposed_err.max() <= 2 * eb  # fill shifts the range slightly

    def test_average_down_restore(self, sphere_hierarchy):
        container = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3, exclude_covered=True)
        out = decompress_hierarchy(container, sphere_hierarchy, restore="average_down")
        covered = sphere_hierarchy.covered_mask(0)
        coarse = out[0].patches("f")[0].data
        fine = out[1].patches("f")[0].data
        # Covered coarse cells equal the mean of their 8 fine children.
        pooled = fine.reshape(8, 2, 16, 2, 16, 2).mean(axis=(1, 3, 5))
        assert np.allclose(coarse[8:], pooled, atol=1e-12)

    def test_bad_restore_rejected(self, sphere_hierarchy):
        container = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3)
        with pytest.raises(CompressionError):
            decompress_hierarchy(container, sphere_hierarchy, restore="magic")


class TestContainer:
    def test_serialization_roundtrip(self, sphere_hierarchy):
        container = compress_hierarchy(sphere_hierarchy, "sz-interp", 1e-3)
        raw = container.tobytes()
        parsed = CompressedHierarchy.frombytes(raw)
        assert parsed.codec == container.codec
        assert parsed.compressed_bytes == container.compressed_bytes
        out = decompress_hierarchy(parsed, sphere_hierarchy)
        a = flatten_to_uniform(out, "f")
        b = flatten_to_uniform(decompress_hierarchy(container, sphere_hierarchy), "f")
        assert np.array_equal(a, b)

    def test_frombytes_rejects_garbage(self):
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            CompressedHierarchy.frombytes(b"XXXXjunk")


class TestAverageDown:
    def test_exact_on_manual_hierarchy(self, sphere_hierarchy):
        h = sphere_hierarchy
        average_down(h, "f")
        coarse = h[0].patches("f")[0].data
        fine = h[1].patches("f")[0].data
        pooled = fine.reshape(8, 2, 16, 2, 16, 2).mean(axis=(1, 3, 5))
        assert np.allclose(coarse[8:], pooled)
