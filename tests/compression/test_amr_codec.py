"""Tests for AMR-aware hierarchy compression."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.amr import flatten_to_uniform
from repro.compression.amr_codec import (
    CompressedHierarchy,
    average_down,
    compress_hierarchy,
    decompress_hierarchy,
    decompress_selection,
)
from repro.compression.container import ContainerReader
from repro.errors import CompressionError


class CountingBytesIO(io.BytesIO):
    """BytesIO that tallies how many payload bytes are actually read."""

    def __init__(self, raw: bytes):
        super().__init__(raw)
        self.bytes_read = 0

    def read(self, size=-1):
        out = super().read(size)
        self.bytes_read += len(out)
        return out


class TestRoundtrip:
    @pytest.mark.parametrize("codec", ["sz-lr", "sz-interp", "zfp-like"])
    def test_error_bound_per_patch(self, sphere_hierarchy, codec):
        container = compress_hierarchy(sphere_hierarchy, codec, 1e-3, mode="rel")
        out = decompress_hierarchy(container, sphere_hierarchy)
        for lev_o, lev_r in zip(sphere_hierarchy, out):
            for p, q in zip(lev_o.patches("f"), lev_r.patches("f")):
                eb = 1e-3 * (p.data.max() - p.data.min())
                assert np.abs(p.data - q.data).max() <= eb * (1 + 1e-9)

    def test_ratio_positive(self, sphere_hierarchy):
        container = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-2)
        assert container.ratio > 1.0

    def test_field_subset(self, multi_field_hierarchy):
        container = compress_hierarchy(multi_field_hierarchy, "sz-lr", 1e-3, fields=["a"])
        out = decompress_hierarchy(container, multi_field_hierarchy)
        # Field b copied from template verbatim.
        assert np.array_equal(
            out[0].patches("b")[0].data, multi_field_hierarchy[0].patches("b")[0].data
        )

    def test_unknown_field_rejected(self, sphere_hierarchy):
        with pytest.raises(CompressionError):
            compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3, fields=["nope"])

    def test_codec_instance_accepted(self, sphere_hierarchy):
        from repro.compression.sz_lr import SZLR

        container = compress_hierarchy(sphere_hierarchy, SZLR(block_size=4), 1e-3)
        out = decompress_hierarchy(container, sphere_hierarchy)
        assert out.n_levels == 2


class TestExcludeCovered:
    def test_improves_ratio_on_structured_data(self, sphere_hierarchy):
        plain = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-4)
        excl = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-4, exclude_covered=True)
        # Covered half of the coarse level becomes a constant: never worse.
        assert excl.compressed_bytes <= plain.compressed_bytes

    def test_exposed_coarse_data_still_bounded(self, sphere_hierarchy):
        container = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3, exclude_covered=True)
        out = decompress_hierarchy(container, sphere_hierarchy)
        covered = sphere_hierarchy.covered_mask(0)
        orig = sphere_hierarchy[0].patches("f")[0].data
        recon = out[0].patches("f")[0].data
        # The filled region carries no guarantee, but exposed cells must.
        eb = 1e-3 * (np.ptp(orig))  # compressed patch had filled values;
        exposed_err = np.abs(orig - recon)[~covered]
        assert exposed_err.max() <= 2 * eb  # fill shifts the range slightly

    def test_average_down_restore(self, sphere_hierarchy):
        container = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3, exclude_covered=True)
        out = decompress_hierarchy(container, sphere_hierarchy, restore="average_down")
        covered = sphere_hierarchy.covered_mask(0)
        coarse = out[0].patches("f")[0].data
        fine = out[1].patches("f")[0].data
        # Covered coarse cells equal the mean of their 8 fine children.
        pooled = fine.reshape(8, 2, 16, 2, 16, 2).mean(axis=(1, 3, 5))
        assert np.allclose(coarse[8:], pooled, atol=1e-12)

    def test_bad_restore_rejected(self, sphere_hierarchy):
        container = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3)
        with pytest.raises(CompressionError):
            decompress_hierarchy(container, sphere_hierarchy, restore="magic")


class TestContainer:
    def test_serialization_roundtrip(self, sphere_hierarchy):
        container = compress_hierarchy(sphere_hierarchy, "sz-interp", 1e-3)
        raw = container.tobytes()
        parsed = CompressedHierarchy.frombytes(raw)
        assert parsed.codec == container.codec
        assert parsed.compressed_bytes == container.compressed_bytes
        out = decompress_hierarchy(parsed, sphere_hierarchy)
        a = flatten_to_uniform(out, "f")
        b = flatten_to_uniform(decompress_hierarchy(container, sphere_hierarchy), "f")
        assert np.array_equal(a, b)

    def test_frombytes_rejects_garbage(self):
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            CompressedHierarchy.frombytes(b"XXXXjunk")

    def test_index_locates_every_stream(self, multi_field_hierarchy):
        container = compress_hierarchy(multi_field_hierarchy, "sz-lr", 1e-3)
        raw = container.tobytes()
        reader = ContainerReader(io.BytesIO(raw))
        assert len(reader.entries) == 6  # 2 levels x 2 fields, 1+2 patches
        for entry in reader.entries:
            blob = raw[entry.offset : entry.offset + entry.length]
            assert blob == container.streams[entry.level][entry.field][entry.patch]


class TestSelectiveDecompression:
    def test_single_patch_matches_full(self, multi_field_hierarchy):
        container = compress_hierarchy(multi_field_hierarchy, "sz-lr", 1e-3)
        full = decompress_hierarchy(container, multi_field_hierarchy)
        sel = decompress_selection(container.tobytes(), levels=1, fields="a", patches=1)
        assert list(sel) == [(1, "a", 1)]
        assert np.array_equal(sel[(1, "a", 1)], full[1].patches("a")[1].data)

    def test_field_and_level_selectors(self, multi_field_hierarchy):
        raw = compress_hierarchy(multi_field_hierarchy, "sz-lr", 1e-3).tobytes()
        by_field = decompress_selection(raw, fields="b")
        assert sorted(by_field) == [(0, "b", 0), (1, "b", 0), (1, "b", 1)]
        by_level = decompress_selection(raw, levels=[1])
        assert all(key[0] == 1 for key in by_level) and len(by_level) == 4

    def test_from_path_and_reader(self, sphere_hierarchy, tmp_path):
        raw = compress_hierarchy(sphere_hierarchy, "sz-interp", 1e-3).tobytes()
        path = tmp_path / "h.rprh"
        path.write_bytes(raw)
        from_path = decompress_selection(path, levels=0)
        with ContainerReader.open(path) as reader:
            from_reader = decompress_selection(reader, levels=0)
        assert from_path.keys() == from_reader.keys()
        for key in from_path:
            assert np.array_equal(from_path[key], from_reader[key])

    def test_read_patch_accessor(self, sphere_hierarchy):
        container = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3)
        reader = ContainerReader(io.BytesIO(container.tobytes()))
        patch = reader.read_patch(1, "f", 0)
        full = decompress_hierarchy(container, sphere_hierarchy)
        assert np.array_equal(patch, full[1].patches("f")[0].data)

    def test_missing_patch_rejected(self, sphere_hierarchy):
        from repro.errors import FormatError

        raw = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3).tobytes()
        with pytest.raises(FormatError, match="no patch"):
            ContainerReader(io.BytesIO(raw)).read_patch(7, "f", 0)

    def test_single_patch_reads_o_patch_bytes(self, sphere_hierarchy):
        # Acceptance criterion: a one-patch selection must consume
        # footer + index + that patch's stream — not the whole payload.
        raw = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3).tobytes()
        counting = CountingBytesIO(raw)
        reader = ContainerReader(counting)
        index_overhead = counting.bytes_read  # header + footer + index
        target = reader.entry(0, "f", 0)
        out = reader.select(levels=0, fields="f", patches=0)
        assert list(out) == [(0, "f", 0)]
        consumed = counting.bytes_read
        assert consumed == index_overhead + target.length
        skipped = sum(e.length for e in reader.entries) - target.length
        assert skipped > 0 and consumed <= len(raw) - skipped

    def test_bad_source_type_rejected(self):
        with pytest.raises(CompressionError, match="cannot read"):
            decompress_selection(12345)

    def test_bad_selector_types_named(self, sphere_hierarchy):
        raw = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3).tobytes()
        with pytest.raises(CompressionError, match="field selector"):
            decompress_selection(raw, fields=0)
        with pytest.raises(CompressionError, match="level selector"):
            decompress_selection(raw, levels="all")
        with pytest.raises(CompressionError, match="patch selector"):
            decompress_selection(raw, patches=object())


class TestLegacyRemoval:
    """The pre-index RPRH read shim is gone; the magic must be *named* in
    the rejection so users know what they are holding."""

    def test_legacy_magic_rejected_with_clear_error(self):
        from repro.errors import FormatError

        with pytest.raises(FormatError, match="unsupported legacy magic"):
            CompressedHierarchy.frombytes(b"RPRH" + b"\x00" * 64)

    def test_legacy_error_names_remedy(self):
        from repro.errors import FormatError

        with pytest.raises(FormatError, match="re-compress"):
            CompressedHierarchy.frombytes(b"RPRH\x10\x00\x00\x00")

    def test_steps_selector_rejected_on_snapshot(self, sphere_hierarchy):
        raw = compress_hierarchy(sphere_hierarchy, "sz-lr", 1e-3).tobytes()
        with pytest.raises(CompressionError, match="single-snapshot"):
            decompress_selection(raw, steps=0)


class TestAverageDown:
    def test_exact_on_manual_hierarchy(self, sphere_hierarchy):
        h = sphere_hierarchy
        average_down(h, "f")
        coarse = h[0].patches("f")[0].data
        fine = h[1].patches("f")[0].data
        pooled = fine.reshape(8, 2, 16, 2, 16, 2).mean(axis=(1, 3, 5))
        assert np.allclose(coarse[8:], pooled)
