"""Corruption/truncation fuzzing for the patch-indexed container.

Every stream and the index itself carry crc32 checksums, and the footer is
magic-terminated — so *any* single-byte flip and *any* truncation of an
RPH2 container must surface as a FormatError/CompressionError that names
the failing component, never as silent garbage.
"""

from __future__ import annotations

import io
import json
import struct
import zlib

import numpy as np
import pytest

from repro.compression.amr_codec import (
    CompressedHierarchy,
    compress_hierarchy,
    decompress_selection,
)
from repro.compression.container import ContainerReader, pack_container
from repro.errors import CompressionError, FormatError, ReproError


@pytest.fixture(scope="module")
def container_raw():
    from tests.conftest import make_sphere_hierarchy

    h = make_sphere_hierarchy()
    return compress_hierarchy(h, "sz-lr", 1e-3).tobytes()


def _index_span(raw: bytes) -> tuple[int, int]:
    """(offset, length) of the index region, straight from the footer."""
    index_offset, index_length, _, _ = struct.unpack_from("<QQI8s", raw, len(raw) - 28)
    return index_offset, index_length


class TestIndexCorruption:
    def test_flipped_index_bytes(self, container_raw):
        off, length = _index_span(container_raw)
        for rel in (0, length // 3, length - 1):
            corrupted = bytearray(container_raw)
            corrupted[off + rel] ^= 0xFF
            with pytest.raises(FormatError, match="index"):
                ContainerReader(io.BytesIO(bytes(corrupted)))

    def test_flipped_footer_bytes(self, container_raw):
        for rel in range(1, 28):
            corrupted = bytearray(container_raw)
            corrupted[len(corrupted) - rel] ^= 0xFF
            with pytest.raises(FormatError):
                ContainerReader(io.BytesIO(bytes(corrupted)))

    def test_bad_header_magic(self, container_raw):
        corrupted = b"XXXX" + container_raw[4:]
        with pytest.raises(FormatError, match="magic"):
            CompressedHierarchy.frombytes(corrupted)

    def test_bad_version(self, container_raw):
        corrupted = container_raw[:4] + b"\x99" + container_raw[5:]
        with pytest.raises(FormatError, match="version"):
            ContainerReader(io.BytesIO(corrupted))


class TestStreamCorruption:
    def test_bad_checksum_names_patch(self, container_raw):
        reader = ContainerReader(io.BytesIO(container_raw))
        for entry in reader.entries:
            corrupted = bytearray(container_raw)
            corrupted[entry.offset + entry.length // 2] ^= 0xFF
            with pytest.raises(FormatError) as err:
                decompress_selection(
                    bytes(corrupted), levels=entry.level,
                    fields=entry.field, patches=entry.patch,
                )
            msg = str(err.value)
            assert "checksum" in msg
            assert f"level={entry.level}" in msg
            assert repr(entry.field) in msg
            assert f"patch={entry.patch}" in msg

    def test_other_patches_still_readable(self, container_raw):
        # Corruption is contained: untouched patches decode normally.
        reader = ContainerReader(io.BytesIO(container_raw))
        victim, survivor = reader.entries[0], reader.entries[1]
        corrupted = bytearray(container_raw)
        corrupted[victim.offset] ^= 0xFF
        out = decompress_selection(
            bytes(corrupted), levels=survivor.level,
            fields=survivor.field, patches=survivor.patch,
        )
        assert out[survivor.key].dtype == np.float64

    def test_truncated_streams(self, container_raw):
        for cut in (5, len(container_raw) // 4, len(container_raw) // 2,
                    len(container_raw) - 1):
            with pytest.raises(FormatError):
                ContainerReader(io.BytesIO(container_raw[:cut]))

    def test_every_single_byte_flip_raises(self, container_raw):
        # The checksummed layout leaves no blind spots: flip any byte and
        # full materialization must raise a controlled error.
        rng = np.random.default_rng(11)
        for pos in rng.integers(0, len(container_raw), size=60):
            corrupted = bytearray(container_raw)
            corrupted[int(pos)] ^= 0xFF
            with pytest.raises(ReproError):
                CompressedHierarchy.frombytes(bytes(corrupted))


def _rewrite_index(raw: bytes, mutate) -> bytes:
    """Apply ``mutate`` to the parsed index and re-seal it with a valid
    crc/footer — simulating a hostile-but-checksummed index."""
    off, length, _, _ = struct.unpack_from("<QQI8s", raw, len(raw) - 28)
    index = json.loads(raw[off : off + length])
    mutate(index)
    new_index = json.dumps(index, separators=(",", ":")).encode()
    footer = struct.pack("<QQI8s", off, len(new_index), zlib.crc32(new_index), b"RPH2-IDX")
    return raw[:off] + new_index + footer


class TestHostileIndex:
    def test_out_of_range_level_rejected(self, container_raw):
        bad = _rewrite_index(container_raw, lambda idx: idx["entries"][0].__setitem__(0, 9))
        with pytest.raises(FormatError, match="out-of-range level"):
            ContainerReader(io.BytesIO(bad))

    def test_negative_level_rejected(self, container_raw):
        # Negative levels must not silently index from the end.
        bad = _rewrite_index(container_raw, lambda idx: idx["entries"][0].__setitem__(0, -1))
        with pytest.raises(FormatError, match="out-of-range level"):
            ContainerReader(io.BytesIO(bad))

    def test_entry_past_payload_rejected(self, container_raw):
        bad = _rewrite_index(
            container_raw, lambda idx: idx["entries"][-1].__setitem__(4, 10**9)
        )
        with pytest.raises(FormatError, match="outside the payload"):
            ContainerReader(io.BytesIO(bad))

    def test_negative_length_rejected(self, container_raw):
        bad = _rewrite_index(
            container_raw, lambda idx: idx["entries"][0].__setitem__(4, -5)
        )
        with pytest.raises(FormatError, match="malformed"):
            ContainerReader(io.BytesIO(bad))

    def test_missing_meta_key_rejected(self, container_raw):
        bad = _rewrite_index(container_raw, lambda idx: idx.pop("codec"))
        with pytest.raises(FormatError, match="malformed container index"):
            ContainerReader(io.BytesIO(bad))

    def test_short_entry_row_rejected(self, container_raw):
        bad = _rewrite_index(
            container_raw, lambda idx: idx["entries"].__setitem__(0, [0, "f"])
        )
        with pytest.raises(FormatError, match="malformed container index"):
            ContainerReader(io.BytesIO(bad))


class TestUnknownCodec:
    def _container_with_codec_name(self, name: str) -> bytes:
        codec_stream = b"RPRC" + b"\x00" * 16  # never decoded: crc passes
        meta = {
            "codec": name, "error_bound": 1e-3, "mode": "rel",
            "fields": ["f"], "exclude_covered": False, "original_bytes": 100,
        }
        return pack_container(meta, [{"f": [codec_stream]}])

    def test_unknown_codec_names_patch_and_codec(self):
        raw = self._container_with_codec_name("sz-9000")
        with pytest.raises(CompressionError) as err:
            decompress_selection(raw)
        msg = str(err.value)
        assert "sz-9000" in msg
        assert "level=0" in msg and "patch=0" in msg

    def test_index_metadata_still_inspectable(self):
        # The index parses fine — only decoding the stream fails.
        raw = self._container_with_codec_name("sz-9000")
        reader = ContainerReader(io.BytesIO(raw))
        assert reader.codec == "sz-9000"
        assert len(reader.entries) == 1


class TestLegacyRejection:
    """RPRH is no longer parsed at all: whatever follows the magic —
    garbage, truncation, or a perfectly valid legacy header — the answer
    is the same clear unsupported-legacy-magic error."""

    @pytest.mark.parametrize(
        "raw",
        [
            b"RPRH" + b"\xff" * 40,
            b"RPRH\x10",
            b"RPRH" + struct.pack("<I", 18) + json.dumps({"codec": "sz-lr"}).encode(),
        ],
        ids=["garbage", "truncated", "valid-legacy-header"],
    )
    def test_legacy_magic_always_rejected(self, raw):
        with pytest.raises(FormatError, match="unsupported legacy magic"):
            CompressedHierarchy.frombytes(raw)
