"""Tests for the canonical Huffman coder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import huffman
from repro.errors import CompressionError


class TestCodeLengths:
    def test_uniform_four_symbols(self):
        lengths = huffman.code_lengths(np.array([1, 1, 1, 1]))
        assert (lengths == 2).all()

    def test_skewed_shorter_for_frequent(self):
        lengths = huffman.code_lengths(np.array([100, 1, 1]))
        assert lengths[0] < lengths[1]

    def test_kraft_inequality(self):
        rng = np.random.default_rng(0)
        freqs = rng.integers(1, 1000, size=50)
        lengths = huffman.code_lengths(freqs)
        assert np.sum(2.0 ** -lengths.astype(float)) <= 1.0 + 1e-12

    def test_single_symbol(self):
        assert huffman.code_lengths(np.array([5]))[0] == 1

    def test_length_cap_respected(self):
        # Fibonacci-like frequencies force deep trees without limiting.
        freqs = np.array([1, 1] + [int(1.6**k) + 1 for k in range(2, 40)])
        lengths = huffman.code_lengths(freqs)
        assert lengths.max() <= huffman.MAX_CODE_LENGTH
        assert np.sum(2.0 ** -lengths.astype(float)) <= 1.0 + 1e-12

    def test_zero_frequency_rejected(self):
        with pytest.raises(CompressionError):
            huffman.code_lengths(np.array([3, 0, 2]))

    def test_oversized_alphabet_rejected(self):
        with pytest.raises(huffman.HuffmanAlphabetError):
            huffman.code_lengths(np.ones((1 << 16) + 1, dtype=np.int64))


class TestRoundtrip:
    def test_skewed_symbols(self, rng):
        syms = (rng.geometric(0.4, size=50_000) - 1).astype(np.int64)
        syms *= rng.choice([-1, 1], size=syms.size)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms)

    def test_empty(self):
        out = huffman.decode(huffman.encode(np.empty(0, dtype=np.int64)))
        assert out.size == 0

    def test_single_value_repeated(self):
        syms = np.full(1000, -7, dtype=np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms)

    def test_two_symbols(self):
        syms = np.array([0, 1, 0, 0, 1, 1, 0], dtype=np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms)

    def test_large_sparse_values(self):
        syms = np.array([2**40, -(2**41), 2**40, 0], dtype=np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms)

    def test_compresses_skewed_data(self, rng):
        syms = (rng.geometric(0.6, size=100_000) - 1).astype(np.int64)
        blob = huffman.encode(syms)
        assert len(blob) < syms.nbytes / 4

    def test_multidimensional_input_flattened(self, rng):
        syms = rng.integers(-5, 5, size=(10, 10)).astype(np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms.ravel())


class TestErrors:
    def test_truncated_blob(self):
        with pytest.raises(Exception):
            huffman.decode(b"\x01\x02")

    def test_truncated_bitstream(self, rng):
        syms = rng.integers(0, 100, size=1000).astype(np.int64)
        blob = huffman.encode(syms)
        with pytest.raises(Exception):
            huffman.decode(blob[: len(blob) // 2])


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=500))
    def test_roundtrip_random(self, values):
        syms = np.asarray(values, dtype=np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 200), st.integers(1, 8))
    def test_roundtrip_small_alphabet(self, n, k):
        rng = np.random.default_rng(n * 31 + k)
        syms = rng.integers(0, k, size=n).astype(np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms)
