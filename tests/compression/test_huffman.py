"""Tests for the canonical Huffman coder."""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import huffman
from repro.errors import CompressionError, DecompressionError


class TestCodeLengths:
    def test_uniform_four_symbols(self):
        lengths = huffman.code_lengths(np.array([1, 1, 1, 1]))
        assert (lengths == 2).all()

    def test_skewed_shorter_for_frequent(self):
        lengths = huffman.code_lengths(np.array([100, 1, 1]))
        assert lengths[0] < lengths[1]

    def test_kraft_inequality(self):
        rng = np.random.default_rng(0)
        freqs = rng.integers(1, 1000, size=50)
        lengths = huffman.code_lengths(freqs)
        assert np.sum(2.0 ** -lengths.astype(float)) <= 1.0 + 1e-12

    def test_single_symbol(self):
        assert huffman.code_lengths(np.array([5]))[0] == 1

    def test_length_cap_respected(self):
        # Fibonacci-like frequencies force deep trees without limiting.
        freqs = np.array([1, 1] + [int(1.6**k) + 1 for k in range(2, 40)])
        lengths = huffman.code_lengths(freqs)
        assert lengths.max() <= huffman.MAX_CODE_LENGTH
        assert np.sum(2.0 ** -lengths.astype(float)) <= 1.0 + 1e-12

    def test_zero_frequency_rejected(self):
        with pytest.raises(CompressionError):
            huffman.code_lengths(np.array([3, 0, 2]))

    def test_oversized_alphabet_rejected(self):
        with pytest.raises(huffman.HuffmanAlphabetError):
            huffman.code_lengths(np.ones((1 << 16) + 1, dtype=np.int64))


class TestRoundtrip:
    def test_skewed_symbols(self, rng):
        syms = (rng.geometric(0.4, size=50_000) - 1).astype(np.int64)
        syms *= rng.choice([-1, 1], size=syms.size)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms)

    def test_empty(self):
        out = huffman.decode(huffman.encode(np.empty(0, dtype=np.int64)))
        assert out.size == 0

    def test_single_value_repeated(self):
        syms = np.full(1000, -7, dtype=np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms)

    def test_two_symbols(self):
        syms = np.array([0, 1, 0, 0, 1, 1, 0], dtype=np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms)

    def test_large_sparse_values(self):
        syms = np.array([2**40, -(2**41), 2**40, 0], dtype=np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms)

    def test_compresses_skewed_data(self, rng):
        syms = (rng.geometric(0.6, size=100_000) - 1).astype(np.int64)
        blob = huffman.encode(syms)
        assert len(blob) < syms.nbytes / 4

    def test_multidimensional_input_flattened(self, rng):
        syms = rng.integers(-5, 5, size=(10, 10)).astype(np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms.ravel())


class TestErrors:
    def test_truncated_blob(self):
        with pytest.raises(Exception):
            huffman.decode(b"\x01\x02")

    def test_truncated_bitstream(self, rng):
        syms = rng.integers(0, 100, size=1000).astype(np.int64)
        blob = huffman.encode(syms)
        with pytest.raises(Exception):
            huffman.decode(blob[: len(blob) // 2])


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=500))
    def test_roundtrip_random(self, values):
        syms = np.asarray(values, dtype=np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 200), st.integers(1, 8))
    def test_roundtrip_small_alphabet(self, n, k):
        rng = np.random.default_rng(n * 31 + k)
        syms = rng.integers(0, k, size=n).astype(np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(syms)), syms)


# ----------------------------------------------------------------------
# HUF2: K-way interleaved layout
# ----------------------------------------------------------------------
class TestHUF2Layout:
    """Structural contract of the K-way interleaved blob."""

    def test_encode_emits_huf2_magic(self, rng):
        syms = rng.integers(-5, 5, size=100).astype(np.int64)
        assert huffman.encode(syms)[:4] == huffman.HUF2_MAGIC

    def test_legacy_encoder_is_headerless(self, rng):
        syms = rng.integers(-5, 5, size=100).astype(np.int64)
        assert huffman._encode_huf1(syms)[:4] != huffman.HUF2_MAGIC

    def test_huf1_huf2_cross_decode(self, rng):
        """Both layouts decode to the same symbols through one decode()."""
        syms = (rng.geometric(0.3, size=5000) - 1).astype(np.int64)
        syms *= rng.choice([-1, 1], size=syms.size)
        out1 = huffman.decode(huffman._encode_huf1(syms))
        out2 = huffman.decode(huffman.encode(syms, k_streams=8))
        assert np.array_equal(out1, syms)
        assert np.array_equal(out2, syms)

    def test_k_does_not_divide_n(self, rng):
        """Ragged final round: lanes k >= n % K decode one symbol fewer."""
        for n, k in [(7, 3), (100, 7), (4097, 64), (12345, 32)]:
            syms = rng.integers(-9, 9, size=n).astype(np.int64)
            blob = huffman.encode(syms, k_streams=k)
            assert np.array_equal(huffman.decode(blob), syms), (n, k)

    def test_sparse_negative_alphabet_kway(self):
        syms = np.array(
            [2**40, -(2**41), 0, -1, 2**40, 2**40, -(2**41), 7] * 600,
            dtype=np.int64,
        )
        blob = huffman.encode(syms, k_streams=64)
        assert np.array_equal(huffman.decode(blob), syms)

    def test_single_symbol_degenerate_kway(self):
        syms = np.full(10_001, -3, dtype=np.int64)
        blob = huffman.encode(syms, k_streams=16)
        assert np.array_equal(huffman.decode(blob), syms)

    def test_empty_kway(self):
        blob = huffman.encode(np.empty(0, dtype=np.int64), k_streams=8)
        assert huffman.decode(blob).size == 0

    def test_vector_and_scalar_decoders_agree(self, rng):
        """The lockstep gather path and per-stream scalar path are one
        semantics: decode the same blob through both, symbol-for-symbol."""
        syms = rng.integers(-100, 100, size=20_000).astype(np.int64)
        blob = huffman.encode(syms, k_streams=64)
        n, K, alphabet, lengths, stream_bits, payload = huffman._parse_huf2(blob)
        table_sym, table_len, max_len = huffman._flat_tables(alphabet, lengths)
        fused = huffman._fused_table(alphabet, table_sym, table_len)
        vec = huffman._decode_streams_vector(
            n, K, stream_bits, payload, table_sym, table_len, max_len, fused
        )
        tsym, tlen = huffman._scalar_tables(table_sym, table_len, n)
        scl = huffman._decode_streams_scalar(
            n, K, stream_bits, payload, tsym, tlen, max_len
        )
        assert np.array_equal(vec, syms)
        assert np.array_equal(scl, syms)

    def test_auto_widens_with_input(self):
        # Below the 8-stream floor, K clamps to the symbol count.
        assert huffman.resolve_k_streams("auto", 3) == 3
        assert huffman.resolve_k_streams("auto", 10) == huffman._AUTO_MIN_STREAMS
        small = huffman.resolve_k_streams("auto", 5_000)
        large = huffman.resolve_k_streams("auto", 64**3)
        assert small < large <= huffman._AUTO_MAX_STREAMS
        # Explicit K is clamped to the symbol count so no stream is empty.
        assert huffman.resolve_k_streams(64, 10) == 10

    def test_k_streams_validation(self):
        for bad in (0, -1, huffman.MAX_STREAMS + 1, 2.5, "wide", True, None):
            with pytest.raises(CompressionError):
                huffman.resolve_k_streams(bad, 100)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(-(2**50), 2**50), min_size=1, max_size=300),
        st.integers(1, 40),
    )
    def test_roundtrip_any_alphabet_any_k(self, values, k):
        syms = np.asarray(values, dtype=np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(syms, k_streams=k)), syms)


# ----------------------------------------------------------------------
# HUF2: adversarial blobs
# ----------------------------------------------------------------------
class TestHUF2Adversarial:
    """Corrupt K-way blobs must raise DecompressionError, never return
    garbage or read out of bounds."""

    @staticmethod
    def _blob(n=9000, k=64, lo=-50, hi=50, seed=0):
        rng = np.random.default_rng(seed)
        syms = rng.integers(lo, hi, size=n).astype(np.int64)
        return huffman.encode(syms, k_streams=k), syms

    @staticmethod
    def _sections(blob):
        """Byte offsets of (alphabet, lengths, stream_bits, payload)."""
        _, n, k, alpha = huffman._HUF2_HEAD.unpack_from(blob, 0)
        head = huffman._HUF2_HEAD.size
        return {
            "alphabet": (head, head + 8 * alpha),
            "lengths": (head + 8 * alpha, head + 9 * alpha),
            "stream_bits": (head + 9 * alpha, head + 9 * alpha + 8 * k),
            "payload": (head + 9 * alpha + 8 * k, len(blob)),
            "n": n,
            "k": k,
            "alpha": alpha,
        }

    def test_truncated_header(self):
        blob, _ = self._blob()
        with pytest.raises(DecompressionError):
            huffman.decode(blob[:10])
        with pytest.raises(DecompressionError):
            huffman.decode(blob[: self._sections(blob)["lengths"][1] - 1])

    def test_truncated_stream(self):
        """Payload shorter than the recorded per-stream bit lengths."""
        blob, _ = self._blob()
        with pytest.raises(DecompressionError):
            huffman.decode(blob[:-17])

    def test_non_full_code_table(self):
        """A lengths section whose canonical codes do not tile the window
        space exactly is rejected before any symbol is emitted."""
        blob, _ = self._blob()
        sec = self._sections(blob)
        doctored = bytearray(blob)
        lo, hi = sec["lengths"]
        doctored[lo:hi] = bytes([huffman.MAX_CODE_LENGTH]) * (hi - lo)
        with pytest.raises(DecompressionError):
            huffman.decode(bytes(doctored))

    def test_zero_code_length_rejected(self):
        blob, _ = self._blob()
        lo, _ = self._sections(blob)["lengths"]
        doctored = bytearray(blob)
        doctored[lo] = 0
        with pytest.raises(DecompressionError):
            huffman.decode(bytes(doctored))

    @pytest.mark.parametrize("k", [4, 64])
    def test_bad_per_stream_bit_length(self, k):
        """Tampered stream_bits must fail on both decode paths (k=4 routes
        to the scalar path, k=64 to the vectorized lockstep path)."""
        blob, _ = self._blob(k=k)
        sec = self._sections(blob)
        lo, _ = sec["stream_bits"]
        for delta in (-8, 8):
            doctored = bytearray(blob)
            (bits,) = struct.unpack_from("<Q", doctored, lo)
            struct.pack_into("<Q", doctored, lo, bits + delta)
            with pytest.raises(DecompressionError):
                huffman.decode(bytes(doctored))

    def test_bad_stream_count(self):
        blob, _ = self._blob()
        doctored = bytearray(blob)
        struct.pack_into("<I", doctored, 12, 0)
        with pytest.raises(DecompressionError):
            huffman.decode(bytes(doctored))
        struct.pack_into("<I", doctored, 12, huffman.MAX_STREAMS + 1)
        with pytest.raises(DecompressionError):
            huffman.decode(bytes(doctored))

    def test_bad_alphabet_size(self):
        blob, _ = self._blob()
        doctored = bytearray(blob)
        struct.pack_into("<I", doctored, 16, (1 << huffman.MAX_CODE_LENGTH) + 1)
        with pytest.raises(DecompressionError):
            huffman.decode(bytes(doctored))

    def test_truncation_sweep_never_returns_garbage(self):
        """Any prefix of a valid blob either raises or (never) round-trips."""
        blob, syms = self._blob(n=500, k=8)
        for cut in range(0, len(blob) - 1, 37):
            try:
                out = huffman.decode(blob[:cut])
            except Exception:
                continue
            assert not np.array_equal(out, syms) or cut >= len(blob)


class TestExtremeAlphabets:
    def test_int64_min_vector_path(self):
        """np.abs(INT64_MIN) overflows negative; the fused-gather guard
        must compare min/max directly or extreme symbols decode wrong."""
        lo = np.iinfo(np.int64).min
        syms = np.array([lo, 0, 1, 2] * 2000, dtype=np.int64)
        blob = huffman.encode(syms, k_streams=64)
        assert np.array_equal(huffman.decode(blob), syms)

    def test_int64_extremes_scalar_path(self):
        hi = np.iinfo(np.int64).max
        lo = np.iinfo(np.int64).min
        syms = np.array([lo, hi, 0, -1] * 50, dtype=np.int64)
        blob = huffman.encode(syms, k_streams=4)
        assert np.array_equal(huffman.decode(blob), syms)
