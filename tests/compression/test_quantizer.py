"""Tests for the error-bounded quantizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression.quantizer import (
    dequantize,
    prequantize,
    quantize_residuals,
    reconstruct_from_codes,
)
from repro.errors import CompressionError


class TestResidualQuantizer:
    def test_roundtrip_bound(self, rng):
        values = rng.normal(size=1000)
        preds = values + rng.normal(size=1000) * 0.5
        eb = 0.01
        codes = quantize_residuals(values, preds, eb)
        recon = reconstruct_from_codes(preds, codes, eb)
        assert np.abs(recon - values).max() <= eb * (1 + 1e-12)

    def test_perfect_prediction_zero_codes(self):
        values = np.linspace(0, 1, 50)
        codes = quantize_residuals(values, values, 0.1)
        assert (codes == 0).all()

    def test_codes_are_int64(self, rng):
        codes = quantize_residuals(rng.normal(size=10), np.zeros(10), 0.5)
        assert codes.dtype == np.int64

    def test_nonpositive_eb_rejected(self):
        with pytest.raises(CompressionError):
            quantize_residuals(np.ones(3), np.zeros(3), 0.0)
        with pytest.raises(CompressionError):
            reconstruct_from_codes(np.zeros(3), np.zeros(3, dtype=np.int64), -1.0)

    def test_overflow_guard(self):
        with pytest.raises(CompressionError):
            quantize_residuals(np.array([1e30]), np.array([0.0]), 1e-10)


class TestPrequantizer:
    def test_bound(self, rng):
        data = rng.normal(size=(8, 8, 8)) * 10
        eb = 0.05
        q = prequantize(data, eb)
        assert np.abs(dequantize(q, eb) - data).max() <= eb * (1 + 1e-12)

    def test_integer_output(self):
        q = prequantize(np.array([0.2, 0.9, -0.9]), 0.25)
        assert q.dtype == np.int64
        assert np.array_equal(q, [0, 2, -2])

    def test_overflow_guard(self):
        with pytest.raises(CompressionError):
            prequantize(np.array([1e30]), 1e-12)

    def test_bad_eb(self):
        with pytest.raises(CompressionError):
            prequantize(np.ones(3), 0.0)
        with pytest.raises(CompressionError):
            dequantize(np.zeros(3, dtype=np.int64), 0.0)


class TestProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 64),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
        st.floats(1e-6, 1e2),
    )
    def test_prequant_bound_holds(self, data, eb):
        q = prequantize(data, eb)
        assert np.abs(dequantize(q, eb) - data).max(initial=0.0) <= eb * (1 + 1e-9)

    @given(
        hnp.arrays(np.float64, 32, elements=st.floats(-1e4, 1e4, allow_nan=False)),
        hnp.arrays(np.float64, 32, elements=st.floats(-1e4, 1e4, allow_nan=False)),
        st.floats(1e-5, 10.0),
    )
    def test_residual_bound_holds_any_prediction(self, values, preds, eb):
        codes = quantize_residuals(values, preds, eb)
        recon = reconstruct_from_codes(preds, codes, eb)
        assert np.abs(recon - values).max() <= eb * (1 + 1e-9)
