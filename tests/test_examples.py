"""Smoke tests for the example scripts (the fast ones, in-process).

Examples are documentation that executes; these tests keep them from
rotting. The heavyweight studies (quickstart, warpx_visual_study) are
exercised implicitly through the experiment benches, so only the scripts
that finish in seconds run here.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, argv: list[str], monkeypatch, capsys) -> str:
    monkeypatch.setattr(sys, "argv", [script] + argv)
    with pytest.raises(SystemExit) as exc:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    assert exc.value.code in (0, None)
    return capsys.readouterr().out


class TestExamples:
    def test_amr_viz_primer(self, monkeypatch, capsys):
        out = _run("amr_viz_primer.py", [], monkeypatch, capsys)
        assert "Figure 14" in out
        assert "re-sampling's interpolation partially repairs" in out
        # The gap must be reported wider than the crack.
        assert "wider" in out

    def test_parallel_insitu(self, monkeypatch, capsys):
        out = _run("parallel_insitu.py", ["--scale", "0.25", "--workers", "2"], monkeypatch, capsys)
        assert "bound holds: True" in out
        assert "random access" in out

    def test_campaign_planning(self, monkeypatch, capsys):
        out = _run("campaign_planning.py", ["--scale", "0.25"], monkeypatch, capsys)
        assert "Campaign plan" in out
        assert "CR=" in out
