"""Tests for utility helpers (validation, timers, rng)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import ReproError
from repro.util import (
    StageTimes,
    Timer,
    as_tuple,
    check_array,
    check_dim,
    check_positive,
    check_same_shape,
    make_rng,
)


class TestValidation:
    def test_check_dim(self):
        assert check_dim(2) == 2
        with pytest.raises(ReproError):
            check_dim(4)

    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ReproError):
            check_positive("x", 0.0)
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ReproError):
            check_positive("x", -1.0, strict=False)

    def test_check_array_rank(self):
        with pytest.raises(ReproError):
            check_array("a", np.zeros((2, 2)), ndim=3)

    def test_check_array_dtype_kind(self):
        with pytest.raises(ReproError):
            check_array("a", np.zeros(3, dtype=np.int32), dtype_kind="f")

    def test_check_array_empty(self):
        with pytest.raises(ReproError):
            check_array("a", np.zeros(0))
        check_array("a", np.zeros(0), allow_empty=True)

    def test_check_same_shape(self):
        with pytest.raises(ReproError):
            check_same_shape("a", np.zeros(2), "b", np.zeros(3))

    def test_as_tuple_scalar_broadcast(self):
        assert as_tuple(2, 3) == (2, 2, 2)

    def test_as_tuple_sequence(self):
        assert as_tuple((1, 2), 2) == (1, 2)
        with pytest.raises(ReproError):
            as_tuple((1, 2), 3)


class TestTimers:
    def test_timer_measures(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_stage_times_accumulate(self):
        st = StageTimes()
        st.add("a", 1.0)
        st.add("a", 0.5)
        st.add("b", 2.0)
        assert st.stages["a"] == pytest.approx(1.5)
        assert st.total == pytest.approx(3.5)
        assert st.as_dict() == st.stages

    def test_measure_context(self):
        st = StageTimes()
        with st.measure("x"):
            time.sleep(0.005)
        assert st.stages["x"] >= 0.004


class TestRng:
    def test_int_seed_deterministic(self):
        assert make_rng(7).normal() == make_rng(7).normal()

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)
