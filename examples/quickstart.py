#!/usr/bin/env python
"""Quickstart: generate -> compress -> decompress -> visualize -> measure.

Runs the whole reproduction pipeline on a small Nyx-like dataset in under a
minute and prints every number it computes. Start here.

Usage::

    python examples/quickstart.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.amr import flatten_to_uniform, write_plotfile
from repro.compression import compress_hierarchy, decompress_hierarchy
from repro.metrics import psnr, r_ssim, ssim
from repro.sims import NyxConfig, nyx_hierarchy
from repro.viz import (
    crack_report,
    dual_cell_isosurface,
    render_mesh,
    resampling_isosurface,
    write_pgm,
)


def main() -> int:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("quickstart_output")
    out.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # 1. Generate a two-level Nyx-like AMR dataset (32^3 + 64^3).
    # ------------------------------------------------------------------
    print("== 1. generating Nyx-like AMR dataset")
    hierarchy = nyx_hierarchy(NyxConfig(coarse_n=32, seed=42))
    print(f"   {hierarchy}")
    print(f"   per-level densities: {[f'{d:.1%}' for d in hierarchy.densities()]}")

    # Optional: store it as a plotfile (the Figure 3 layout).
    plt_path = write_plotfile(out / "nyx_plt", hierarchy, overwrite=True)
    print(f"   plotfile written to {plt_path}")

    # ------------------------------------------------------------------
    # 2. Compress the density field with both of the paper's codecs.
    # ------------------------------------------------------------------
    print("== 2. compressing baryon_density at relative eb 1e-3")
    restored = {}
    for codec in ("sz-lr", "sz-interp"):
        container = compress_hierarchy(
            hierarchy, codec, error_bound=1e-3, mode="rel", fields=["baryon_density"]
        )
        restored[codec] = decompress_hierarchy(container, hierarchy)
        print(f"   {codec:10s} ratio = {container.ratio:6.1f}x "
              f"({container.original_bytes} -> {container.compressed_bytes} bytes)")

    # ------------------------------------------------------------------
    # 3. Measure reconstruction quality on the uniform post-analysis view.
    # ------------------------------------------------------------------
    print("== 3. data quality (uniform composite)")
    reference = flatten_to_uniform(hierarchy, "baryon_density")
    for codec, h in restored.items():
        got = flatten_to_uniform(h, "baryon_density")
        print(f"   {codec:10s} PSNR = {psnr(reference, got):6.2f} dB   "
              f"volumetric SSIM = {ssim(reference, got, window=7, sigma=None):.6f}")

    # ------------------------------------------------------------------
    # 4. Extract iso-surfaces with both of the paper's methods.
    # ------------------------------------------------------------------
    print("== 4. iso-surface extraction (overdensity = 2)")
    iso = 2.0
    methods = {
        "resampling": lambda h: resampling_isosurface(h, "baryon_density", iso),
        "dual+redundant": lambda h: dual_cell_isosurface(
            h, "baryon_density", iso, gap_fix="redundant"
        ),
    }
    images = {}
    for name, extract in methods.items():
        result = extract(hierarchy)
        report = crack_report(result, hierarchy)
        print(f"   {name:15s} {result.n_faces:6d} triangles, "
              f"{report.open_edge_count} interior open edges, "
              f"max gap {report.max_gap:.4f}")
        images[name] = render_mesh(result.merged, axis=2, size=(256, 256))
        write_pgm(out / f"original_{name}.pgm", images[name])

    # ------------------------------------------------------------------
    # 5. The paper's headline: dual-cell amplifies compression artifacts.
    # ------------------------------------------------------------------
    print("== 5. render R-SSIM of decompressed data (SZ-L/R, eb 1e-3)")
    for name, extract in methods.items():
        result = extract(restored["sz-lr"])
        img = render_mesh(result.merged, axis=2, size=(256, 256))
        write_pgm(out / f"szlr_{name}.pgm", img)
        quality = r_ssim(images[name], img, data_range=1.0)
        print(f"   {name:15s} render R-SSIM = {quality:.3e}  (higher = worse)")
    print(f"\nImages written to {out}/ — compare *_resampling.pgm vs *_dual+redundant.pgm")
    return 0


if __name__ == "__main__":
    sys.exit(main())
