#!/usr/bin/env python
"""2-D primer on AMR visualization artifacts (the paper's Figures 4-8, 14).

Walks the didactic constructions of the paper's background section in two
dimensions, printing ASCII sketches:

* cell->vertex re-sampling (Figure 4 left),
* marching squares on the vertex grid (Figure 4 right),
* the dangling-node crack between two AMR levels (Figures 5/6),
* the dual-cell method and its inter-level gap (Figures 7/8),
* stitching segments bridging the gap (Figure 8 bottom),
* the 1-D interpolation-smoothing mechanism (Figure 14).

Usage::

    python examples/amr_viz_primer.py
"""

from __future__ import annotations

import numpy as np

from repro.viz import (
    cell_to_vertex,
    contour_length,
    figure14_demo,
    marching_squares,
    stitch_contours_2d,
)


def segment_endpoints(segments: np.ndarray, near_x: float | None = None, tol: float = 0.2) -> np.ndarray:
    """Open endpoints of a 2-D contour: points used exactly once.

    With ``near_x`` given, keep only endpoints within ``tol`` of that x
    coordinate — used to isolate the endpoints at the level interface from
    the ones where the contour legitimately exits the domain.
    """
    if len(segments) == 0:
        return np.empty((0, 2))
    pts = np.round(segments.reshape(-1, 2), 9)
    uniq, counts = np.unique(pts, axis=0, return_counts=True)
    ends = uniq[counts == 1]
    if near_x is not None and len(ends):
        ends = ends[np.abs(ends[:, 0] - near_x) <= tol]
    return ends


def main() -> int:
    # ------------------------------------------------------------------
    # Figure 4: re-sampling and marching squares.
    # ------------------------------------------------------------------
    print("== Figure 4: cell->vertex re-sampling")
    cells = np.array([[8.0, 6.0, 4.0], [6.0, 4.0, 2.0], [4.0, 2.0, 0.0]])
    vertices = cell_to_vertex(cells)
    print("cell data:\n", cells)
    print("vertex data (note the interior 6 = mean of 8,6,6,4):\n", np.round(vertices, 2))
    segs = marching_squares(vertices, 5.0)
    print(f"marching squares at iso=5: {len(segs)} segments, length {contour_length(segs):.3f}\n")

    # ------------------------------------------------------------------
    # Figures 5/6: the crack. Two levels of a radial field.
    # ------------------------------------------------------------------
    print("== Figures 5/6: dangling-node crack between levels")
    # Coarse level: left half (cells 8x4), fine level: right half (16x16).
    def radial(x, y):
        return np.sqrt((x - 1.0) ** 2 + (y - 0.5) ** 2)

    n = 8
    xs_c = (np.arange(n // 2) + 0.5) / n * 2
    ys_c = (np.arange(n) + 0.5) / n
    coarse = radial(xs_c[:, None], ys_c[None, :])
    xs_f = 1.0 + (np.arange(n) + 0.5) / n
    ys_f = (np.arange(2 * n) + 0.5) / (2 * n)
    fine = radial(xs_f[:, None], ys_f[None, :])
    iso = 0.4
    segs_c = marching_squares(cell_to_vertex(coarse), iso, spacing=(2 / n, 1 / n))
    segs_f = marching_squares(
        cell_to_vertex(fine), iso, spacing=(1 / n, 1 / (2 * n)), origin=(1.0, 0.0)
    )
    ends_c = segment_endpoints(segs_c, near_x=1.0)
    ends_f = segment_endpoints(segs_f, near_x=1.0)
    print(f"coarse contour: {len(segs_c)} segments; fine contour: {len(segs_f)} segments")
    print(f"open endpoints at the interface: coarse {len(ends_c)}, fine {len(ends_f)}")
    if len(ends_c) and len(ends_f):
        d = np.linalg.norm(ends_c[:, None] - ends_f[None, :], axis=2)
        print(f"closest endpoint mismatch (the crack): {d.min():.4f} domain units\n")

    # ------------------------------------------------------------------
    # Figures 7/8: dual-cell gap and stitching.
    # ------------------------------------------------------------------
    print("== Figures 7/8: dual-cell gap and stitching")
    dual_c = marching_squares(coarse, iso, spacing=(2 / n, 1 / n), origin=(1 / n, 0.5 / n))
    dual_f = marching_squares(
        fine, iso, spacing=(1 / n, 1 / (2 * n)), origin=(1.0 + 0.5 / n, 0.25 / n)
    )
    e_c = segment_endpoints(dual_c, near_x=1.0)
    e_f = segment_endpoints(dual_f, near_x=1.0)
    print(f"dual contours: coarse {len(dual_c)} segs, fine {len(dual_f)} segs")
    if len(e_c) and len(e_f):
        d = np.linalg.norm(e_c[:, None] - e_f[None, :], axis=2)
        print(f"gap between dual contours: {d.min():.4f} (vs crack above — wider)")
        stitches = stitch_contours_2d(e_f, e_c, max_span=4.0 / n)
        print(f"stitching cells bridge it with {len(stitches)} segments (Figure 8 bottom)\n")

    # ------------------------------------------------------------------
    # Figure 14: why re-sampling hides block artifacts.
    # ------------------------------------------------------------------
    print("== Figure 14: interpolation smooths block artifacts")
    demo = figure14_demo()
    print("original:      ", demo.original.tolist())
    print("decompressed:  ", demo.decompressed.tolist(), "(dual-cell shows this as-is)")
    print("re-sampled:    ", demo.resampled.tolist(), "(2.5 and 5.5 soften the steps)")
    print(f"dual-cell RMSE = {demo.dual_cell_rmse:.4f}, re-sampled RMSE = {demo.resampled_rmse:.4f}")
    print("=> re-sampling's interpolation partially repairs the artifact, which is")
    print("   why the paper finds dual-cell visualizations of compressed data worse.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
