#!/usr/bin/env python
"""In-situ-style parallel compression of AMR data.

Demonstrates the two parallel patterns the block-independent design
enables (paper §3.3):

* chunked compression of a uniform field (each "rank" compresses a
  block-aligned slab; reassembly is exact within the error bound),
* per-patch compression of a whole hierarchy through a thread pool,
* random access: decode one 6^3 block out of a compressed stream.

Usage::

    python examples/parallel_insitu.py [--workers 4]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.compression import SZLR, decompress_any
from repro.experiments.datasets import load_app
from repro.parallel import compress_chunks, compress_patches, decompress_chunks


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    ds = load_app("warpx", args.scale)
    data = ds.uniform_field()
    print(f"field: WarpX Ez, {data.shape}, {data.nbytes / 1e6:.1f} MB")

    # ------------------------------------------------------------------
    # 1. Chunked compression (block-aligned slabs).
    # ------------------------------------------------------------------
    for n_chunks in (1, 4):
        t0 = time.perf_counter()
        stream = compress_chunks(
            data, "sz-lr", 1e-3, mode="rel", n_chunks=n_chunks,
            parallel="thread", workers=args.workers,
        )
        dt = time.perf_counter() - t0
        out = decompress_chunks(stream, parallel="thread", workers=args.workers)
        eb_abs = 1e-3 * (data.max() - data.min())
        ok = np.abs(out - data).max() <= eb_abs * (1 + 1e-12)
        print(f"  chunks={n_chunks}: CR={data.nbytes / stream.compressed_bytes:5.1f} "
              f"compress {dt * 1e3:6.1f} ms  bound holds: {ok}")

    # ------------------------------------------------------------------
    # 2. Per-patch hierarchy compression through the pool.
    # ------------------------------------------------------------------
    patches = [p.data for lev in ds.hierarchy for p in lev.patches(ds.field)]
    t0 = time.perf_counter()
    blobs = compress_patches(patches, "sz-lr", 1e-3, parallel="thread", workers=args.workers)
    dt = time.perf_counter() - t0
    total = sum(len(b) for b in blobs)
    raw = sum(p.nbytes for p in patches)
    print(f"  {len(patches)} patches: CR={raw / total:5.1f} in {dt * 1e3:.1f} ms")
    # Every stream is self-describing; spot-check one.
    sample = decompress_any(blobs[0])
    print(f"  spot-check patch 0: shape {sample.shape} decoded OK")

    # ------------------------------------------------------------------
    # 3. Random access into a block-based stream.
    # ------------------------------------------------------------------
    codec = SZLR()
    blob = codec.compress(data, 1e-3, mode="rel")
    block = codec.decompress_block(blob, 0)
    print(f"  random access: block 0 of the stream -> {block.shape} cube, "
          f"mean {block.mean():.4f} (no full-array decode of the prediction stage)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
