#!/usr/bin/env python
"""Campaign storage planning: the paper's introduction, quantified.

The paper opens with the arithmetic that motivates AMR compression: a
single high-resolution AMR snapshot is ~8 TB, so 5 ensemble runs x 25
snapshots is ~1 PB. This example measures real compression ratios on the
synthetic Nyx dataset at several error bounds, projects them onto the
paper's campaign shape, and prints the storage/write-time trade table —
including the power-spectrum distortion each bound costs, so the answer
to "which error bound?" is data-driven.

Usage::

    python examples/campaign_planning.py [--scale 0.5]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.amr import campaign_cost, flatten_to_uniform
from repro.compression import compress_hierarchy, decompress_hierarchy
from repro.experiments.datasets import load_app
from repro.experiments.report import format_table
from repro.metrics import psnr, spectrum_distortion


@dataclass(frozen=True)
class PlanRow:
    error_bound: float
    cr: float
    psnr: float
    pk_large_scale_err: float
    campaign_tb_raw: float
    campaign_tb_compressed: float
    write_hours_raw: float
    write_hours_compressed: float


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--bandwidth-gbps", type=float, default=10.0)
    args = parser.parse_args()

    ds = load_app("nyx", args.scale)
    reference = ds.uniform_field()
    print(f"dataset: {ds.hierarchy}")
    print("projecting onto the paper's campaign: 25 snapshots x 5 ensemble runs,")
    print(f"write bandwidth {args.bandwidth_gbps} GB/s, all 6 fields stored.\n")

    rows = []
    for eb in (1e-4, 1e-3, 1e-2):
        container = compress_hierarchy(ds.hierarchy, "sz-lr", eb, mode="rel")
        restored = decompress_hierarchy(container, ds.hierarchy)
        got = flatten_to_uniform(restored, ds.field)
        _, dist = spectrum_distortion(reference, got, n_bins=8)
        cost = campaign_cost(
            ds.hierarchy,
            compression_ratio=container.ratio,
            bandwidth_gbps=args.bandwidth_gbps,
        )
        rows.append(
            PlanRow(
                error_bound=eb,
                cr=container.ratio,
                psnr=psnr(reference, got),
                pk_large_scale_err=float(dist[0]),
                campaign_tb_raw=cost.total_raw_bytes / 1e12,
                campaign_tb_compressed=cost.total_compressed_bytes / 1e12,
                write_hours_raw=cost.raw_write_seconds / 3600,
                write_hours_compressed=cost.compressed_write_seconds / 3600,
            )
        )
        print(f"  eb={eb:g}: CR={container.ratio:.1f}x (all 6 fields)")

    print()
    print(format_table(rows, title="Campaign plan (Nyx-like, SZ-L/R)"))
    print("Reading: pick the largest eb whose PSNR and P(k) distortion your")
    print("analysis tolerates; the CR column then sets the storage budget.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
