#!/usr/bin/env python
"""Nyx rate-distortion study: Figure 13 plus the ZFP-like baseline.

Sweeps all three codecs (SZ-L/R, SZ-Interp, and the transform-based
ZFP-like baseline) across error bounds on the Nyx density field, prints
the rate-distortion table with ASCII plots, and demonstrates the
redundant-coarse-data exclusion (paper §2.2).

Usage::

    python examples/nyx_compression_study.py [--scale 0.5]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.amr import flatten_to_uniform
from repro.compression import compress_hierarchy, decompress_hierarchy
from repro.experiments.datasets import load_app
from repro.experiments.report import ascii_plot, format_table
from repro.metrics import psnr, r_ssim


@dataclass(frozen=True)
class Row:
    codec: str
    error_bound: float
    cr: float
    psnr: float
    r_ssim: float


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument(
        "--error-bounds", type=float, nargs="+", default=[1e-4, 3e-4, 1e-3, 3e-3, 1e-2]
    )
    args = parser.parse_args()

    ds = load_app("nyx", args.scale)
    reference = ds.uniform_field()
    print(f"dataset: {ds.hierarchy}")

    rows = []
    for codec in ("sz-lr", "sz-interp", "zfp-like"):
        for eb in args.error_bounds:
            container = compress_hierarchy(ds.hierarchy, codec, eb, mode="rel", fields=[ds.field])
            restored = flatten_to_uniform(decompress_hierarchy(container, ds.hierarchy), ds.field)
            rows.append(
                Row(
                    codec=codec,
                    error_bound=eb,
                    cr=container.ratio,
                    psnr=psnr(reference, restored),
                    r_ssim=max(
                        r_ssim(reference, restored, window=7, sigma=None), 1e-12
                    ),
                )
            )
            print(f"  {codec:10s} eb={eb:<8g} CR={rows[-1].cr:7.1f} PSNR={rows[-1].psnr:6.2f}")

    print()
    print(format_table(rows, title="Figure 13 extended: Nyx rate-distortion (3 codecs)"))
    series_p = {}
    series_r = {}
    for r in rows:
        series_p.setdefault(r.codec, []).append((r.cr, r.psnr))
        series_r.setdefault(r.codec, []).append((r.cr, r.r_ssim))
    print(ascii_plot(series_p, title="PSNR vs CR", xlabel="CR", ylabel="PSNR"))
    print(ascii_plot(series_r, logy=True, title="R-SSIM vs CR (log)", xlabel="CR", ylabel="R-SSIM"))

    # Redundant-coarse-data exclusion (§2.2).
    print("Redundant coarse-data exclusion at eb 1e-3:")
    for codec in ("sz-lr", "sz-interp"):
        plain = compress_hierarchy(ds.hierarchy, codec, 1e-3, fields=[ds.field])
        excl = compress_hierarchy(
            ds.hierarchy, codec, 1e-3, fields=[ds.field], exclude_covered=True
        )
        print(f"  {codec:10s} plain CR={plain.ratio:6.2f}  excluded CR={excl.ratio:6.2f} "
              f"({(excl.ratio / plain.ratio - 1) * 100:+.1f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
