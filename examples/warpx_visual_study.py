#!/usr/bin/env python
"""WarpX visual study: Figures 9/10 as a runnable script.

Compresses the WarpX Ez field with SZ-L/R and SZ-Interp across error
bounds, extracts iso-surfaces with the re-sampling and dual-cell methods,
renders every combination, and prints a table quantifying the paper's
observation that the dual-cell method amplifies compression artifacts.

Usage::

    python examples/warpx_visual_study.py [--scale 0.5] [--out dir]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments.figures import run_visual_compare
from repro.experiments.report import format_table
from repro.viz import write_pgm


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5, help="grid-size multiplier")
    parser.add_argument("--out", type=Path, default=Path("warpx_study_output"))
    parser.add_argument(
        "--error-bounds",
        type=float,
        nargs="+",
        default=[1e-4, 1e-3, 1e-2],
        help="relative error bounds to sweep",
    )
    args = parser.parse_args()
    args.out.mkdir(parents=True, exist_ok=True)

    all_rows = []
    for codec in ("sz-lr", "sz-interp"):
        print(f"== {codec}: compress + extract + render at eb {args.error_bounds}")
        images: dict = {}
        rows = run_visual_compare(
            "warpx",
            codec,
            args.error_bounds,
            scale=args.scale,
            methods=("resampling", "dual+redundant"),
            include_original=(codec == "sz-lr"),
            image_store=images,
        )
        all_rows.extend(rows)
        for name, img in images.items():
            write_pgm(args.out / f"{name}.pgm", img)

    print(format_table(
        all_rows,
        columns=["codec", "error_bound", "method", "render_r_ssim", "data_psnr",
                 "open_edge_count", "mean_gap"],
        title="Figures 9/10: method x codec x error bound",
    ))

    # The headline check, printed explicitly.
    print("Dual-cell vs re-sampling render R-SSIM (same codec and eb):")
    for codec in ("sz-lr", "sz-interp"):
        for eb in args.error_bounds:
            pair = [r for r in all_rows if r.codec == codec and r.error_bound == eb]
            if len(pair) != 2:
                continue
            res = next(r for r in pair if r.method == "resampling")
            dual = next(r for r in pair if r.method == "dual+redundant")
            verdict = "dual worse (paper confirmed)" if dual.render_r_ssim > res.render_r_ssim else "UNEXPECTED"
            print(f"  {codec:10s} eb={eb:g}: {res.render_r_ssim:.2e} vs {dual.render_r_ssim:.2e}  -> {verdict}")
    print(f"\nRenders written to {args.out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
