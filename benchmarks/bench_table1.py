"""Table 1: dataset generation and per-level density measurement."""

from __future__ import annotations

from conftest import emit, once

from repro.experiments.table1 import run_table1


def test_table1(benchmark, scale):
    """Regenerate Table 1 (dataset geometry + densities)."""
    rows = once(benchmark, run_table1, scale)
    emit("Table 1 (measured vs paper densities)", rows)
    for row in rows:
        assert row.n_levels == 2
        assert row.density_error < 0.1
