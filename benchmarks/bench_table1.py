"""Table 1: dataset geometry and densities (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``table1`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run table1``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_table1(benchmark, scale):
    """Run the ``table1`` registry entry at benchmark scale."""
    registry_entry(benchmark, "table1", scale)
