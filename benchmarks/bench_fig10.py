"""Figure 10: WarpX + SZ-Interp artifact amplification (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``fig10`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run fig10``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_fig10(benchmark, scale):
    """Run the ``fig10`` registry entry at benchmark scale."""
    registry_entry(benchmark, "fig10", scale)
