"""Figure 10: WarpX + SZ-Interp, re-sampling vs dual-cell."""

from __future__ import annotations

from conftest import emit, once

from repro.experiments.figures import run_fig10


def test_fig10(benchmark, scale):
    """SZ-Interp at eb 1e-3: bump artifacts amplified by dual-cell."""
    rows = once(benchmark, run_fig10, scale)
    emit("Figure 10 (WarpX, SZ-Interp)", rows)
    res = next(r for r in rows if r.method == "resampling")
    dual = next(r for r in rows if r.method == "dual+redundant")
    assert dual.render_r_ssim > res.render_r_ssim
