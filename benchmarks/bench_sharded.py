"""Sharded multi-writer campaigns: write throughput and value identity.

Acceptance gates for the sharded RPHM path (ISSUE 6):

* a 4-shard campaign (one writer lane per shard) must reach **>= 2x** the
  single-writer write throughput on a multi-core host — the lanes
  overlap compression (NumPy/zlib release the GIL) and I/O across
  shards. On a single-core runner the ratio is recorded but the floor is
  not asserted (there is no parallelism to win);
* the union read of the sharded campaign must be value-identical to the
  single-writer series — sharding changes placement, never bytes' worth
  of data;
* reading one step through the manifest must touch only its owning
  shard.

Metrics land in ``BENCH_bench_sharded.json`` via :mod:`perf_harness`, and
``tools/bench_compare.py`` gates regressions against the committed
baseline.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np
from conftest import bench_scale, emit, once

import perf_harness
from repro.amr.io import open_series, write_series, write_sharded_series
from repro.sims import NyxConfig, nyx_step_stream

STEPS = 8
N_SHARDS = 4
FIELD = "baryon_density"
MIN_SPEEDUP = 2.0


@dataclass(frozen=True)
class Row:
    path: str
    shards: int
    wall_s: float
    mb_s: float
    speedup: float


def _config() -> NyxConfig:
    return NyxConfig(coarse_n=max(8, int(32 * bench_scale())))


def _steps(cfg):
    # Materialized once: both writers must compress identical inputs.
    return [s for s in nyx_step_stream(STEPS, cfg)]


def _best_of(fn, n=3) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_sharded_write_throughput_and_identity(benchmark, tmp_path):
    cfg = _config()
    steps = _steps(cfg)
    mb = sum(s.hierarchy.nbytes(FIELD) for s in steps) / 1e6
    single = tmp_path / "single.rph2s"
    manifest = tmp_path / "camp.rphm"

    def write_single():
        write_series(single, steps, codec="sz-lr", error_bound=1e-3,
                     fields=[FIELD], overwrite=True)

    def write_sharded():
        write_sharded_series(manifest, steps, n_shards=N_SHARDS,
                             codec="sz-lr", error_bound=1e-3, fields=[FIELD],
                             parallel="thread", overwrite=True)

    single_s = _best_of(write_single)
    once(benchmark, write_sharded)
    sharded_s = _best_of(write_sharded)
    speedup = single_s / sharded_s

    # Sharding must never change data: the union read equals the
    # single-writer read, key for key, bit for bit.
    with open_series(single) as mono, open_series(manifest) as sh:
        assert sh.is_sharded and sh.n_shards == N_SHARDS
        assert sh.steps == mono.steps
        ref, got = mono.select(), sh.select()
    assert set(got) == set(ref)
    for key, want in ref.items():
        assert np.array_equal(got[key], want), key

    # Selective read: one step costs one shard, not the campaign.
    shard_bytes = {
        name: Path(name).stat().st_size
        for name in (str(manifest.parent / n.name)
                     for n in manifest.parent.glob("*.shard*.rph2s"))
    }
    with open_series(manifest) as sh:
        owner = sh.shard_of(3)
        sh.select(steps=3)
    assert owner in shard_bytes

    perf_harness.record(
        "bench_sharded", "sharded_write_speedup_4shard", speedup, "x",
        higher_is_better=True, tolerance=0.5,
    )
    perf_harness.record(
        "bench_sharded", "sharded_write_throughput", mb / sharded_s, "MB/s",
        higher_is_better=True, tolerance=0.5,
    )
    emit(
        f"Sharded vs single-writer campaign write ({STEPS}-step Nyx, "
        f"{N_SHARDS} shards)",
        [
            Row("single", 1, single_s, mb / single_s, 1.0),
            Row("sharded", N_SHARDS, sharded_s, mb / sharded_s, speedup),
        ],
    )
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert speedup >= MIN_SPEEDUP, (
            f"4-shard write only {speedup:.2f}x the single writer on "
            f"{cores} cores (need >= {MIN_SPEEDUP}x)"
        )
