"""Codec throughput (MB/s) per stage — the third SZ quality axis (§2.1)."""

from __future__ import annotations

from dataclasses import dataclass

from conftest import emit

from repro.compression.registry import make_codec


@dataclass(frozen=True)
class Row:
    codec: str
    direction: str
    mb_per_s: float


def test_compress_throughput(benchmark, warpx):
    """SZ-L/R compression throughput on the WarpX field."""
    data = warpx.uniform_field()
    codec = make_codec("sz-lr")
    benchmark(codec.compress, data, 1e-3, "rel")
    mb = data.nbytes / 1e6
    emit(
        "SZ-L/R compress",
        [Row("sz-lr", "compress", mb / benchmark.stats["mean"])],
    )


def test_decompress_throughput(benchmark, warpx):
    """SZ-L/R decompression throughput."""
    data = warpx.uniform_field()
    codec = make_codec("sz-lr")
    blob = codec.compress(data, 1e-3, "rel")
    benchmark(codec.decompress, blob)
    mb = data.nbytes / 1e6
    emit(
        "SZ-L/R decompress",
        [Row("sz-lr", "decompress", mb / benchmark.stats["mean"])],
    )


def test_interp_compress_throughput(benchmark, warpx):
    """SZ-Interp compression throughput."""
    data = warpx.uniform_field()
    codec = make_codec("sz-interp")
    benchmark(codec.compress, data, 1e-3, "rel")
    mb = data.nbytes / 1e6
    emit(
        "SZ-Interp compress",
        [Row("sz-interp", "compress", mb / benchmark.stats["mean"])],
    )


def test_interp_decompress_throughput(benchmark, warpx):
    """SZ-Interp decompression throughput."""
    data = warpx.uniform_field()
    codec = make_codec("sz-interp")
    blob = codec.compress(data, 1e-3, "rel")
    benchmark(codec.decompress, blob)
    mb = data.nbytes / 1e6
    emit(
        "SZ-Interp decompress",
        [Row("sz-interp", "decompress", mb / benchmark.stats["mean"])],
    )
