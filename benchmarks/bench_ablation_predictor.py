"""Ablation: SZ-L/R predictor selection (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``ablation_predictor`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run ablation_predictor``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_predictor_ablation(benchmark, scale):
    """Run the ``ablation_predictor`` registry entry at benchmark scale."""
    registry_entry(benchmark, "ablation_predictor", scale)
