"""Ablation: SZ-L/R predictor selection (Lorenzo / regression / hybrid).

The paper describes SZ-L/R as choosing per block between the Lorenzo and
linear-regression predictors. This bench forces each predictor alone and
confirms the hybrid never loses (it *is* the per-block minimum of the two,
up to the selection heuristic)."""

from __future__ import annotations

from dataclasses import dataclass

from conftest import emit, once

from repro.compression.sz_lr import SZLR


@dataclass(frozen=True)
class Row:
    app: str
    predictor: str
    cr: float


def _sweep(datasets) -> list[Row]:
    rows = []
    for name, ds in datasets:
        data = ds.uniform_field()
        for predictor in ("lorenzo", "regression", "auto"):
            blob = SZLR(predictor=predictor).compress(data, 1e-3, mode="rel")
            rows.append(Row(app=name, predictor=predictor, cr=data.nbytes / len(blob)))
    return rows


def test_predictor_ablation(benchmark, warpx, nyx):
    """Forced-predictor sweep at eb 1e-3 relative."""
    rows = once(benchmark, _sweep, [("warpx", warpx), ("nyx", nyx)])
    emit("Ablation: SZ-L/R predictor", rows)
    for app in ("warpx", "nyx"):
        by = {r.predictor: r.cr for r in rows if r.app == app}
        assert by["auto"] >= 0.95 * max(by["lorenzo"], by["regression"]), (
            "hybrid selection must not lose to either fixed predictor"
        )
