"""Extension bench: compressibility across simulation timesteps.

Figure 2 of the paper shows structure sharpening over Nyx timesteps. The
sharper the structure, the harder the field is to predict — so the
compression ratio at a fixed relative bound should *fall* as the universe
evolves, and the campaign-level storage projection (the paper's intro
arithmetic) shifts accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from conftest import emit, once

from repro.amr import campaign_cost
from repro.compression.amr_codec import compress_hierarchy
from repro.sims import NyxConfig
from repro.sims.nyx import nyx_timesteps


@dataclass(frozen=True)
class Row:
    growth: float
    cr: float
    snapshot_mb: float
    campaign_raw_gb: float
    campaign_compressed_gb: float


def _run(coarse_n: int) -> list[Row]:
    steps = nyx_timesteps(config=NyxConfig(coarse_n=coarse_n))
    rows = []
    # Fix the absolute bound from the first timestep's field range.
    from repro.amr import flatten_to_uniform

    first = flatten_to_uniform(steps[0], "baryon_density")
    eb_abs = 1e-3 * float(first.max() - first.min())
    for h, growth in zip(steps, (0.35, 0.65, 1.0)):
        container = compress_hierarchy(
            h, "sz-lr", eb_abs, mode="abs", fields=["baryon_density"]
        )
        cost = campaign_cost(h, compression_ratio=container.ratio)
        rows.append(
            Row(
                growth=growth,
                cr=container.ratio,
                snapshot_mb=cost.snapshot_bytes / 1e6,
                campaign_raw_gb=cost.total_raw_bytes / 1e9,
                campaign_compressed_gb=cost.total_compressed_bytes / 1e9,
            )
        )
    return rows


def test_compressibility_over_time(benchmark, scale):
    """CR at fixed relative eb falls as structure forms (Figure 2 data)."""
    rows = once(benchmark, _run, max(16, int(round(32 * scale))))
    emit("Compressibility across Nyx timesteps (eb 1e-3 rel)", rows)
    crs = [r.cr for r in rows]
    assert crs[0] > crs[-1], "collapsed structure must be harder to compress"
    for r in rows:
        assert r.campaign_compressed_gb < r.campaign_raw_gb
