"""Ablation: zMesh 1-D vs 3-D per-patch (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``ablation_zmesh`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run ablation_zmesh``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_zmesh_ablation(benchmark, scale):
    """Run the ``ablation_zmesh`` registry entry at benchmark scale."""
    registry_entry(benchmark, "ablation_zmesh", scale)
