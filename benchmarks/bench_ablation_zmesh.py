"""Ablation: zMesh-style 1-D reordering vs 3-D per-patch compression.

The paper's §1 recounts the zMesh -> TAC lineage: flattening AMR levels to
1-D loses spatial locality that higher-dimensional predictors exploit, but
buys a single merged entropy stream. This bench measures both sides of the
trade-off:

* on the *smooth* WarpX field, 3-D prediction locality dominates and
  per-patch 3-D compression wins (the TAC motivation);
* on the *spiky* Nyx field at a large absolute bound, most values quantize
  to a handful of bins, prediction dimensionality stops mattering, and the
  merged 1-D stream's single entropy table wins — which is exactly why
  zMesh was a real improvement and why TAC needed *adaptive* 3-D (not
  plain per-patch 3-D) to beat it.
"""

from __future__ import annotations

from dataclasses import dataclass

from conftest import emit, once

from repro.compression.amr_codec import compress_hierarchy
from repro.compression.zmesh_like import ZMeshLike


@dataclass(frozen=True)
class Row:
    app: str
    cr_zmesh_1d: float
    cr_patch_3d: float

    @property
    def advantage_3d(self) -> float:
        return self.cr_patch_3d / self.cr_zmesh_1d


def _sweep(datasets) -> list[Row]:
    rows = []
    for name, ds in datasets:
        # Resolve ONE absolute bound for both schemes so the comparison is
        # about prediction dimensionality, not bound bookkeeping (per-patch
        # relative bounds would be tighter than a global relative bound).
        uniform = ds.uniform_field()
        eb_abs = 1e-3 * float(uniform.max() - uniform.min())
        z = ZMeshLike("sz-lr")
        blob = z.compress_hierarchy(ds.hierarchy, ds.field, eb_abs, mode="abs")
        cr_1d = ds.hierarchy.nbytes(ds.field) / len(blob)
        c3d = compress_hierarchy(ds.hierarchy, "sz-lr", eb_abs, mode="abs", fields=[ds.field])
        rows.append(Row(app=name, cr_zmesh_1d=cr_1d, cr_patch_3d=c3d.ratio))
    return rows


def test_zmesh_ablation(benchmark, warpx, nyx):
    """1-D reorder vs 3-D per-patch at eb 1e-3 relative."""
    rows = once(benchmark, _sweep, [("warpx", warpx), ("nyx", nyx)])
    emit("Ablation: zMesh-style 1-D vs 3-D per-patch compression", rows)
    by = {r.app: r for r in rows}
    # Smooth data: 3-D locality must win (the TAC premise).
    assert by["warpx"].advantage_3d > 1.0
    # Spiky data: the merged 1-D entropy stream is allowed to win, but the
    # 3-D path must stay within a small factor (sanity of both paths).
    assert by["nyx"].advantage_3d > 0.3
