"""Ablation: redundant covered-data exclusion (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``ablation_redundant`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run ablation_redundant``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_redundant_exclusion(benchmark, scale):
    """Run the ``ablation_redundant`` registry entry at benchmark scale."""
    registry_entry(benchmark, "ablation_redundant", scale)
