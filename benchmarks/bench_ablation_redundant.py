"""Ablation: excluding redundant covered-coarse data (paper §2.2).

Patch-based AMR stores coarse values under refined regions that
post-analysis never reads (Figure 3); the paper notes they can be omitted
to improve the ratio. This bench compares hierarchy compression with and
without the exclusion, per codec.
"""

from __future__ import annotations

from dataclasses import dataclass

from conftest import emit, once

from repro.compression.amr_codec import compress_hierarchy


@dataclass(frozen=True)
class Row:
    app: str
    codec: str
    cr_plain: float
    cr_excluded: float

    @property
    def gain(self) -> float:
        return self.cr_excluded / self.cr_plain


def _sweep(datasets) -> list[Row]:
    rows = []
    for name, ds in datasets:
        for codec in ("sz-lr", "sz-interp"):
            plain = compress_hierarchy(ds.hierarchy, codec, 1e-3, fields=[ds.field])
            excl = compress_hierarchy(
                ds.hierarchy, codec, 1e-3, fields=[ds.field], exclude_covered=True
            )
            rows.append(Row(app=name, codec=codec, cr_plain=plain.ratio, cr_excluded=excl.ratio))
    return rows


def test_redundant_exclusion(benchmark, warpx, nyx):
    """Redundant-coarse-data exclusion at eb 1e-3 relative."""
    rows = once(benchmark, _sweep, [("warpx", warpx), ("nyx", nyx)])
    emit("Ablation: redundant coarse-data exclusion (gain = excluded/plain)", rows)
    for row in rows:
        # Nyx refines ~40% of the domain, so the constant-filled region
        # must help; WarpX refines only ~9%, so gains are small either way.
        assert row.gain > 0.95
    nyx_rows = [r for r in rows if r.app == "nyx"]
    assert any(r.gain > 1.02 for r in nyx_rows), "exclusion should pay off on Nyx"
