"""Ablation: entropy stage (Huffman + DEFLATE vs DEFLATE alone).

SZ's pipeline entropy-codes quantization codes with a customized Huffman
coder before the general lossless pass (§2.1). This bench measures what
the Huffman stage buys over handing raw codes to DEFLATE.
"""

from __future__ import annotations

from dataclasses import dataclass

from conftest import emit, once

from repro.compression.sz_interp import SZInterp
from repro.compression.sz_lr import SZLR


@dataclass(frozen=True)
class Row:
    app: str
    codec: str
    entropy: str
    cr: float


def _sweep(datasets) -> list[Row]:
    rows = []
    for name, ds in datasets:
        data = ds.uniform_field()
        for codec_name, cls in (("sz-lr", SZLR), ("sz-interp", SZInterp)):
            for entropy in ("huffman", "deflate"):
                blob = cls(entropy=entropy).compress(data, 1e-3, mode="rel")
                rows.append(
                    Row(app=name, codec=codec_name, entropy=entropy, cr=data.nbytes / len(blob))
                )
    return rows


def test_entropy_ablation(benchmark, warpx, nyx):
    """Huffman-vs-DEFLATE entropy stage at eb 1e-3 relative."""
    rows = once(benchmark, _sweep, [("warpx", warpx), ("nyx", nyx)])
    emit("Ablation: entropy stage", rows)
    # Both stages must produce working, competitive streams.
    for row in rows:
        assert row.cr > 1.0
