"""Visualization-sensitivity ablation (paper §3.1).

The paper focuses on iso-surfaces because they are "highly sensitive to
errors and can be significantly affected by compression errors" compared
to volume rendering and slicing. This bench quantifies that: compress the
Nyx field at one error bound, produce all three visualizations of original
and decompressed data with identical settings, and compare the image
R-SSIM degradation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from conftest import emit, once

from repro.amr import flatten_to_uniform
from repro.compression.amr_codec import compress_hierarchy, decompress_hierarchy
from repro.metrics import r_ssim
from repro.viz import (
    marching_cubes,
    max_intensity_projection,
    normalize_field,
    render_mesh,
    slice_image,
    volume_render,
)


@dataclass(frozen=True)
class Row:
    visualization: str
    render_r_ssim: float


def _measure(ds) -> list[Row]:
    h = ds.hierarchy
    container = compress_hierarchy(h, "sz-lr", 1e-2, mode="rel", fields=[ds.field])
    restored = decompress_hierarchy(container, h)
    a = flatten_to_uniform(h, ds.field)
    b = flatten_to_uniform(restored, ds.field)
    lo, hi = float(a.min()), float(a.max())
    rows = []

    # Iso-surface (rendered).
    bounds = (np.zeros(3), np.asarray(a.shape, dtype=float))
    img_a = render_mesh(marching_cubes(a, ds.iso), size=(160, 160), bounds=bounds)
    img_b = render_mesh(marching_cubes(b, ds.iso), size=(160, 160), bounds=bounds)
    rows.append(Row("isosurface", r_ssim(img_a, img_b, data_range=1.0)))

    # Volume rendering and slicing use the identical *linear* transfer
    # function for original and decompressed data. A point error of eb is a
    # ~1% perturbation of the linear scale, so these views barely move; the
    # iso-surface, whose geometry shifts wherever the field crosses the iso
    # value, moves much more — the paper's §3.1 sensitivity argument.
    va = volume_render(normalize_field(a, lo, hi))
    vb = volume_render(normalize_field(b, lo, hi))
    rows.append(Row("volume_render", r_ssim(va, vb, data_range=1.0)))

    sa = normalize_field(slice_image(a), lo, hi)
    sb = normalize_field(slice_image(b), lo, hi)
    rows.append(Row("slice", r_ssim(sa, sb, data_range=1.0)))
    return rows


def test_isosurface_most_sensitive(benchmark, nyx):
    """Iso-surfaces degrade most under the same compression (paper §3.1)."""
    rows = once(benchmark, _measure, nyx)
    emit("Sensitivity of visualization techniques to compression (eb 1e-2)", rows)
    by = {r.visualization: r.render_r_ssim for r in rows}
    assert by["isosurface"] > by["volume_render"]
    assert by["isosurface"] > by["slice"]
