"""Figure 13: rate-distortion on Nyx density (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``fig13`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run fig13``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_fig13(benchmark, scale):
    """Run the ``fig13`` registry entry at benchmark scale."""
    registry_entry(benchmark, "fig13", scale)
