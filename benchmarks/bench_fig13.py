"""Figure 13: rate-distortion on the Nyx density field."""

from __future__ import annotations

from conftest import emit, once

from repro.experiments.figures import run_fig13
from repro.experiments.report import ascii_plot


def test_fig13(benchmark, scale):
    """Sweep both codecs on Nyx; SZ-L/R competitive on irregular data."""
    rows = once(benchmark, run_fig13, scale)
    emit("Figure 13 (Nyx rate-distortion)", rows)
    series = {}
    for r in rows:
        series.setdefault(r.codec, []).append((r.cr, max(r.r_ssim, 1e-12)))
    print(ascii_plot(series, logy=True, title="Fig 13b: R-SSIM vs CR", xlabel="CR", ylabel="R-SSIM"))
    # The paper's Nyx observation (needs enough small-scale structure; holds
    # from scale 0.5 up): SZ-L/R's R-SSIM beats SZ-Interp's at the largest eb.
    if scale >= 0.5:
        largest = max(r.error_bound for r in rows)
        lr = next(r for r in rows if r.codec == "sz-lr" and r.error_bound == largest)
        it = next(r for r in rows if r.codec == "sz-interp" and r.error_bound == largest)
        assert lr.r_ssim < it.r_ssim, "SZ-L/R captures Nyx's local patterns better"
