"""Level-batched fused compression must beat the per-patch path >= 3x.

The paper's workload shape is many small patches (8^3-32^3 at blocking
factors 4/8), where per-stream fixed costs — the pure-Python Huffman tree
build, per-call NumPy dispatch on tiny arrays, per-stream codebook bytes —
dominate the per-patch path. ``compress_hierarchy(..., batch="level")``
runs prediction + quantization as one batched kernel invocation per
(level, field, shape) group and pools the quantization codes under one
shared canonical Huffman codebook, so those costs are paid per *group*.

This benchmark builds the mandated many-small-patch hierarchy (256
patches of 16^3), measures end-to-end ``compress_hierarchy`` wall time for
both paths, and **asserts the fused path is >= 3x faster** — the PR's
headline number, gated in CI against the committed baseline in
``benchmarks/baselines/BENCH_bench_batched.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import pytest
from conftest import emit

import perf_harness

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.level import AMRLevel
from repro.amr.patch import Patch
from repro.compression.amr_codec import compress_hierarchy

#: The acceptance floor: fused level batching vs the per-patch path.
MIN_SPEEDUP = 3.0

#: Mandated workload shape: >= 256 patches of 16^3.
PATCH_EDGE = 16
PATCH_GRID = (8, 8, 4)  # 256 patches


@dataclass(frozen=True)
class Row:
    path: str
    seconds: float
    mb_per_s: float
    ratio: float
    speedup: float


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def many_small_patches() -> AMRHierarchy:
    """256 patches of 16^3: a smooth field plus turbulence-like noise, so
    per-patch quantization-code alphabets have realistic (hundreds of
    symbols) sizes rather than toy ones."""
    rng = np.random.default_rng(7)
    nx, ny, nz = PATCH_GRID
    ps = PATCH_EDGE
    grids = np.meshgrid(*[np.linspace(0.0, 1.0, ps)] * 3, indexing="ij")
    base = np.sin(6 * grids[0]) * np.cos(5 * grids[1]) + grids[2] ** 2
    boxes, patches = [], []
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                box = Box.from_shape((ps,) * 3, lo=(i * ps, j * ps, k * ps))
                boxes.append(box)
                data = base + 0.1 * rng.standard_normal((ps,) * 3) + 0.1 * (i + j + k)
                patches.append(Patch(box, data))
    level = AMRLevel(0, BoxArray(boxes), (1.0,) * 3, {"density": patches})
    domain = Box.from_shape((nx * ps, ny * ps, nz * ps))
    return AMRHierarchy(domain, [level], 2)


def test_batched_compression_speedup(benchmark, many_small_patches):
    """End-to-end compress_hierarchy: batch='level' >= 3x the per-patch
    path on 256 x 16^3 patches (the tentpole acceptance criterion)."""
    h = many_small_patches
    n_patches = len(h[0].boxes)
    assert n_patches >= 256 and h[0].boxes[0].shape == (16, 16, 16)
    mb = h.nbytes("density") / 1e6

    per_patch = compress_hierarchy(h, "sz-lr", 1e-3, fields=["density"])
    batched = compress_hierarchy(h, "sz-lr", 1e-3, fields=["density"], batch="level")
    assert batched.groups, "level batching must produce shared-codebook groups"

    per_s = _best_of(lambda: compress_hierarchy(h, "sz-lr", 1e-3, fields=["density"]))
    benchmark(
        lambda: compress_hierarchy(h, "sz-lr", 1e-3, fields=["density"], batch="level")
    )
    bat_s = _best_of(
        lambda: compress_hierarchy(h, "sz-lr", 1e-3, fields=["density"], batch="level")
    )
    speedup = per_s / bat_s

    perf_harness.record(
        "bench_batched", "batched_speedup", speedup, "x",
        higher_is_better=True, tolerance=0.25,
    )
    perf_harness.record(
        "bench_batched", "batched_throughput", mb / bat_s, "MB/s", higher_is_better=True
    )
    perf_harness.record(
        "bench_batched", "per_patch_throughput", mb / per_s, "MB/s",
        higher_is_better=True,
    )
    perf_harness.record(
        "bench_batched", "grouped_ratio", batched.ratio, "x", higher_is_better=True,
        tolerance=0.05,
    )
    emit(
        f"Level-batched vs per-patch compression ({n_patches} x 16^3 patches)",
        [
            Row("per-patch", per_s, mb / per_s, per_patch.ratio, 1.0),
            Row("batch=level", bat_s, mb / bat_s, batched.ratio, speedup),
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fused level batching only {speedup:.2f}x faster than per-patch "
        f"(need >= {MIN_SPEEDUP}x)"
    )


def test_batched_ratio_not_worse(many_small_patches):
    """Shared codebooks trade per-patch-optimal trees for shared ones but
    drop per-stream codebook bytes; net ratio must not regress."""
    h = many_small_patches
    per_patch = compress_hierarchy(h, "sz-lr", 1e-3, fields=["density"])
    batched = compress_hierarchy(h, "sz-lr", 1e-3, fields=["density"], batch="level")
    assert batched.ratio >= 0.98 * per_patch.ratio


def test_batched_output_valid(many_small_patches):
    """The fused path's output obeys the error bound patch by patch."""
    h = many_small_patches
    batched = compress_hierarchy(h, "sz-lr", 1e-3, fields=["density"], batch="level")
    decoded = batched.select(patches=[0, 100, 255])
    for (lev, field, p_idx), arr in decoded.items():
        data = h[lev].patches(field)[p_idx].data
        eb = 1e-3 * (data.max() - data.min())
        assert np.abs(arr - data).max() <= eb * (1 + 1e-12)
