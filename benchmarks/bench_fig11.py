"""Figure 11: Nyx, both codecs and methods (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``fig11`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run fig11``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_fig11(benchmark, scale):
    """Run the ``fig11`` registry entry at benchmark scale."""
    registry_entry(benchmark, "fig11", scale)
