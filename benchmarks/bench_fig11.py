"""Figure 11: Nyx — original, SZ-L/R and SZ-Interp at eb 1e-2."""

from __future__ import annotations

from conftest import emit, once

from repro.experiments.figures import run_fig11


def test_fig11(benchmark, scale):
    """Both codecs, both methods, plus the original-data references."""
    rows = once(benchmark, run_fig11, scale)
    emit("Figure 11 (Nyx at eb 1e-2)", rows)
    assert {r.codec for r in rows} == {"original", "sz-lr", "sz-interp"}
    for codec in ("sz-lr", "sz-interp"):
        res = next(r for r in rows if r.codec == codec and r.method == "resampling")
        dual = next(r for r in rows if r.codec == codec and r.method == "dual+redundant")
        assert dual.render_r_ssim > res.render_r_ssim, (
            f"{codec}: dual-cell must degrade visual quality (paper §4.2)"
        )
