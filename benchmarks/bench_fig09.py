"""Figure 9: WarpX + SZ-L/R, re-sampling vs dual-cell at three bounds."""

from __future__ import annotations

from conftest import emit, once

from repro.experiments.figures import run_fig9


def test_fig09(benchmark, scale):
    """Decompress + extract + render + compare at eb 1e-4/1e-3/1e-2."""
    rows = once(benchmark, run_fig9, scale)
    emit("Figure 9 (WarpX, SZ-L/R; render R-SSIM vs original-data render)", rows)
    for eb in (1e-4, 1e-3, 1e-2):
        res = next(r for r in rows if r.error_bound == eb and r.method == "resampling")
        dual = next(r for r in rows if r.error_bound == eb and r.method == "dual+redundant")
        assert dual.render_r_ssim > res.render_r_ssim, (
            "dual-cell must amplify compression artifacts (paper §4.1)"
        )
    for method in ("resampling", "dual+redundant"):
        series = sorted((r for r in rows if r.method == method), key=lambda r: r.error_bound)
        vals = [r.render_r_ssim for r in series]
        assert vals == sorted(vals), "visual degradation grows with eb"
