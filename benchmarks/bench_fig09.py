"""Figure 9: WarpX + SZ-L/R artifact amplification (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``fig09`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run fig09``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_fig09(benchmark, scale):
    """Run the ``fig09`` registry entry at benchmark scale."""
    registry_entry(benchmark, "fig09", scale)
