"""Figure 12: rate-distortion on WarpX Ez (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``fig12`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run fig12``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_fig12(benchmark, scale):
    """Run the ``fig12`` registry entry at benchmark scale."""
    registry_entry(benchmark, "fig12", scale)
