"""Figure 12: rate-distortion on the WarpX Ez field."""

from __future__ import annotations

from conftest import emit, once

from repro.experiments.figures import run_fig12
from repro.experiments.report import ascii_plot


def test_fig12(benchmark, scale):
    """Sweep both codecs across error bounds on WarpX."""
    rows = once(benchmark, run_fig12, scale)
    emit("Figure 12 (WarpX rate-distortion)", rows)
    series_psnr = {}
    series_rssim = {}
    for r in rows:
        series_psnr.setdefault(r.codec, []).append((r.cr, r.psnr))
        series_rssim.setdefault(r.codec, []).append((r.cr, max(r.r_ssim, 1e-12)))
    print(ascii_plot(series_psnr, title="Fig 12a: PSNR vs CR", xlabel="CR", ylabel="PSNR"))
    print(ascii_plot(series_rssim, logy=True, title="Fig 12b: R-SSIM vs CR", xlabel="CR", ylabel="R-SSIM"))
    # WarpX is smooth: SZ-Interp dominates the rate axis at every bound.
    by_eb = {}
    for r in rows:
        by_eb.setdefault(r.error_bound, {})[r.codec] = r
    for eb, pair in by_eb.items():
        assert pair["sz-interp"].cr > pair["sz-lr"].cr
