"""In-situ streaming: bounded memory and indexed series random access.

Acceptance gates for the RPH2S streaming path (ISSUE 2):

* on a >= 16-step synthetic campaign, the streaming writer's peak traced
  memory must stay below **0.5x** the batch-compress peak (the batch path
  materializes every snapshot before compressing, the post-hoc workflow);
* fetching one patch of one step through the timestep index must read
  O(selection) bytes — strictly less than a single segment's share of the
  file — plus a steady-state append-throughput measurement.

Peak memory is the high-water mark of ``tracemalloc``-traced allocations;
NumPy registers its buffers with tracemalloc, so generator temporaries and
retained snapshots are both visible to it.
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from dataclasses import dataclass
from pathlib import Path

import pytest
from conftest import bench_scale, emit, once

from repro.amr.io import write_series
from repro.insitu import SeriesReader, StreamingWriter
from repro.sims import NyxConfig, nyx_step_stream

#: Campaign length: comfortably past the >= 16-step acceptance floor so the
#: batch path's retained-snapshot cost dominates its transient cost.
STEPS = 24
FIELD = "baryon_density"


@dataclass(frozen=True)
class MemRow:
    path: str
    steps: int
    peak_mb: float
    wall_s: float
    vs_batch: float


@dataclass(frozen=True)
class AccessRow:
    path: str
    bytes_read: int
    file_bytes: int
    share: float


def _config() -> NyxConfig:
    return NyxConfig(coarse_n=max(8, int(32 * bench_scale())))


def _traced(fn):
    gc.collect()
    tracemalloc.start()
    try:
        t0 = time.perf_counter()
        fn()
        wall = time.perf_counter() - t0
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return wall, peak


@pytest.fixture(scope="module")
def series_path(tmp_path_factory) -> Path:
    """A STEPS-step streamed series on disk (module-cached)."""
    path = tmp_path_factory.mktemp("insitu") / "campaign.rph2s"
    write_series(path, nyx_step_stream(STEPS, _config()), codec="sz-lr",
                 error_bound=1e-3, fields=[FIELD])
    return path


def test_streaming_peak_memory_under_half_of_batch(benchmark, tmp_path):
    """Streaming peak RSS-proxy < 0.5x batch peak on a >= 16-step campaign."""
    cfg = _config()
    stream_target = tmp_path / "stream.rph2s"
    batch_target = tmp_path / "batch.rph2s"

    def streaming():
        write_series(stream_target, nyx_step_stream(STEPS, cfg), codec="sz-lr",
                     error_bound=1e-3, fields=[FIELD], overwrite=True)

    def batch():
        campaign = [s for s in nyx_step_stream(STEPS, cfg)]  # post-hoc workflow
        write_series(batch_target, campaign, codec="sz-lr", error_bound=1e-3,
                     fields=[FIELD], overwrite=True)

    batch_s, batch_peak = _traced(batch)
    stream_s, stream_peak = once(benchmark, _traced, streaming)
    frac = stream_peak / batch_peak
    emit(
        f"Streaming vs batch peak memory ({STEPS}-step Nyx campaign)",
        [
            MemRow("batch", STEPS, batch_peak / 1e6, batch_s, 1.0),
            MemRow("streaming", STEPS, stream_peak / 1e6, stream_s, frac),
        ],
    )
    assert stream_target.read_bytes() == batch_target.read_bytes(), (
        "streaming and batch must produce identical series bytes"
    )
    assert frac < 0.5, (
        f"streaming peak memory is {frac:.2f}x batch (need < 0.5x)"
    )


class _CountingFile:
    """Binary file wrapper tallying how many bytes are actually read."""

    def __init__(self, path: Path):
        self._file = path.open("rb")
        self.bytes_read = 0

    def read(self, size=-1):
        out = self._file.read(size)
        self.bytes_read += len(out)
        return out

    def seek(self, *args):
        return self._file.seek(*args)

    def tell(self):
        return self._file.tell()

    def close(self):
        self._file.close()


def test_series_random_access_reads_o_selection_bytes(series_path):
    """One (step, level, field, patch) fetch reads less than one segment's
    share of the file: series index + segment index + one stream."""
    file_bytes = series_path.stat().st_size
    counting = _CountingFile(series_path)
    try:
        reader = SeriesReader(counting)
        step = reader.steps[STEPS // 2]
        arr = reader.read_patch(step, 1, FIELD, 0)
        consumed = counting.bytes_read
    finally:
        counting.close()
    emit(
        "Series random access byte footprint",
        [AccessRow("one patch of one step", consumed, file_bytes,
                   consumed / file_bytes)],
    )
    assert arr.ndim == 3
    assert consumed < file_bytes / STEPS, (
        f"selection read {consumed} of {file_bytes} bytes — more than one "
        f"segment's share; the timestep index is not being used"
    )


def test_streaming_append_throughput(benchmark, tmp_path):
    """Steady-state append rate with a fixed, pre-generated snapshot."""
    snapshot = next(iter(nyx_step_stream(1, _config()))).hierarchy
    mb = snapshot.nbytes(FIELD) / 1e6

    def append_campaign() -> float:
        t0 = time.perf_counter()
        with StreamingWriter.create(tmp_path / "tp.rph2s", "sz-lr", 1e-3,
                                    fields=[FIELD], overwrite=True) as writer:
            for _ in range(STEPS):
                writer.append_step(snapshot)
        return time.perf_counter() - t0

    wall = once(benchmark, append_campaign)
    print(f"\nsteady-state append: {STEPS} steps, {STEPS * mb / wall:.1f} MB/s")
