"""Ablation: artifact morphology (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``ablation_artifacts`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run ablation_artifacts``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_artifact_morphology(benchmark, scale):
    """Run the ``ablation_artifacts`` registry entry at benchmark scale."""
    registry_entry(benchmark, "ablation_artifacts", scale)
