"""Ablation: artifact morphology — block-wise vs smooth (paper §3.3/§4).

The paper explains its visual findings by artifact *shape*: SZ-L/R's
independent blocks produce "block-wise artifacts" that the dual-cell
method amplifies (Figs 9f, 11e), while SZ-Interp produces smooth global
bumps (Fig 10b). The :func:`repro.metrics.blockiness` metric quantifies
this: error-jump energy on 6-cube boundaries over interior jump energy.
This bench also measures iso-surface displacement (Hausdorff) per codec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from conftest import emit, once

from repro.compression.registry import make_codec
from repro.metrics import blockiness, hausdorff_distance
from repro.viz import marching_cubes


@dataclass(frozen=True)
class Row:
    app: str
    codec: str
    blockiness: float
    iso_hausdorff: float


def _measure(datasets) -> list[Row]:
    rows = []
    for name, ds in datasets:
        data = ds.uniform_field()
        ref_mesh = marching_cubes(data, ds.iso)
        for codec_name in ("sz-lr", "sz-interp"):
            codec = make_codec(codec_name)
            restored = codec.decompress(codec.compress(data, 1e-2, mode="rel"))
            mesh = marching_cubes(restored, ds.iso)
            rows.append(
                Row(
                    app=name,
                    codec=codec_name,
                    blockiness=blockiness(data, restored, 6),
                    iso_hausdorff=(
                        hausdorff_distance(ref_mesh, mesh)
                        if not (ref_mesh.is_empty() or mesh.is_empty())
                        else float("nan")
                    ),
                )
            )
    return rows


def test_artifact_morphology(benchmark, warpx, nyx):
    """SZ-L/R errors must be blockier than SZ-Interp's on both apps."""
    rows = once(benchmark, _measure, [("warpx", warpx), ("nyx", nyx)])
    emit("Ablation: artifact morphology at eb 1e-2", rows)
    for app in ("warpx", "nyx"):
        lr = next(r for r in rows if r.app == app and r.codec == "sz-lr")
        it = next(r for r in rows if r.app == app and r.codec == "sz-interp")
        assert lr.blockiness > it.blockiness, (
            f"{app}: SZ-L/R artifacts must align with the block grid"
        )
        assert lr.blockiness > 1.2, "block-wise artifacts must be detectable"
        assert np.isfinite(lr.iso_hausdorff) and lr.iso_hausdorff > 0
