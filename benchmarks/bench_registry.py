"""The whole experiment registry as one parametrized benchmark module.

One test per registry entry (figures, tables, ablations, scenarios), each
running at ``REPRO_BENCH_SCALE`` and recording its declared metrics so the
session hook emits ``BENCH_<name>.json`` per entry — the pytest-side twin
of ``python -m repro.experiments run all --out <dir>``. The per-figure
``bench_fig*.py`` files remain as thin back-compat wrappers for running a
single figure by filename.
"""

from __future__ import annotations

import pytest
from conftest import registry_entry

from repro.experiments.registry import load_all


@pytest.mark.parametrize("name", sorted(load_all()))
def test_registry_entry(benchmark, name, scale):
    """Run one registry experiment; its paper-shape checks gate the test."""
    registry_entry(benchmark, name, scale)
