"""Entropy-stage throughput: scalar loop vs K-way lockstep decode.

The paper's decode time is dominated by the customized-Huffman entropy
stage, and a single Huffman stream is inherently bit-serial — symbol
``i+1`` starts where symbol ``i`` ended. The ``HUF2`` layout breaks the
chain into K round-robin interleaved streams sharing one canonical
codebook, so the decoder advances all K in lockstep with NumPy gathers
(see ``repro.compression.huffman``). This benchmark measures encode and
decode throughput across the interleave sweep on 64³ grids and asserts
the headline criterion: **K-way decode >= 10x faster than the scalar
loop**, with byte-identical reconstructions.

Two code distributions are exercised:

* *nyx-like*: two-sided geometric quantization codes, the distribution a
  Lorenzo/interpolation predictor feeds the entropy stage on the Nyx
  baryon-density field (most mass near 0);
* *uniform-random*: incompressible 8-bit codes, the entropy stage's
  worst case (deep table, ~zero skew to exploit).

Interleave economics: a lockstep round costs one NumPy gather regardless
of width, so throughput scales with K until the rounds get thin. Narrow
interleaves (K < 32) cannot amortize the per-op dispatch cost and route
to the scalar per-stream path; ``k_streams="auto"`` therefore widens K
with the input (1024 lanes at 64³). The K sweep below makes that curve
visible rather than hiding the regime where vectorization loses.

Scalar-table representation note (``huffman._scalar_tables``)
-------------------------------------------------------------
The scalar loop can index its flat decode tables as Python lists or as
NumPy arrays. Measured on CPython 3.11 (``test_scalar_table_tradeoff``):
a list index costs ~60 ns/symbol vs ~250 ns/symbol for an ndarray
element (NumPy scalar boxing), but materializing ``.tolist()`` of a full
2**16-entry table pair costs ~1 ms. So lists win only once the symbol
count is a non-trivial fraction of the table size; ``_scalar_tables``
converts when ``n_symbols * 8 >= table_size`` and indexes the ndarrays
directly below that, which is why tiny-patch decodes no longer pay a
fixed ~1 ms ``.tolist()`` tax.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import pytest
from conftest import emit

import perf_harness
from repro.compression import huffman

#: Interleave widths swept by the throughput table.
K_SWEEP = (1, 4, 8, 16, "auto")

#: The acceptance criterion: lockstep decode vs the scalar loop on 64^3.
MIN_DECODE_SPEEDUP = 10.0

_N = 64**3


@dataclass(frozen=True)
class Row:
    layout: str
    k: str
    encode_mb_s: float
    decode_mb_s: float
    speedup_vs_scalar: float


@dataclass(frozen=True)
class MicroRow:
    path: str
    microseconds: float


def _nyx_like_codes(n: int = _N) -> np.ndarray:
    """Two-sided geometric codes, nyx-like predictor-residual statistics."""
    rng = np.random.default_rng(7)
    mag = (rng.geometric(0.4, size=n) - 1).astype(np.int64)
    return mag * rng.choice(np.array([-1, 1], dtype=np.int64), size=n)


def _uniform_codes(n: int = _N) -> np.ndarray:
    """Incompressible uniform 8-bit codes (entropy-stage worst case)."""
    return np.random.default_rng(11).integers(0, 256, size=n).astype(np.int64)


_DATASETS = {"nyx_like": _nyx_like_codes, "uniform_random": _uniform_codes}


def _best(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _mb_s(n_symbols: int, seconds: float) -> float:
    """Symbol-array throughput (int64 payload bytes per second)."""
    return n_symbols * 8 / seconds / 1e6


@pytest.fixture(scope="module", params=sorted(_DATASETS))
def dataset(request):
    return request.param, _DATASETS[request.param]()


def test_decode_speedup_64cubed(benchmark, dataset):
    """Headline criterion: auto-K lockstep decode >= 10x the scalar loop.

    The scalar reference is the legacy single-stream ``HUF1`` decode — the
    exact per-symbol Python loop that was the pre-HUF2 production path.
    Reconstructions must match the input symbol-for-symbol.
    """
    name, syms = dataset
    blob_scalar = huffman._encode_huf1(syms)
    blob_kway = huffman.encode(syms, k_streams="auto")

    decoded = huffman.decode(blob_kway)
    assert np.array_equal(decoded, syms), "K-way reconstruction differs"
    assert np.array_equal(huffman.decode(blob_scalar), syms)

    t_scalar = _best(lambda: huffman.decode(blob_scalar))
    benchmark(lambda: huffman.decode(blob_kway))
    t_kway = _best(lambda: huffman.decode(blob_kway))
    speedup = t_scalar / t_kway

    perf_harness.record(
        "bench_entropy", f"decode_speedup_{name}", speedup, "x",
        higher_is_better=True,
    )
    perf_harness.record(
        "bench_entropy", f"decode_mb_s_{name}", _mb_s(syms.size, t_kway), "MB/s",
        higher_is_better=True,
    )
    emit(
        f"HUF1 scalar vs HUF2 auto-K decode ({name}, 64^3)",
        [
            Row("HUF1", "1", float("nan"), _mb_s(syms.size, t_scalar), 1.0),
            Row(
                "HUF2",
                str(huffman.resolve_k_streams("auto", syms.size)),
                float("nan"),
                _mb_s(syms.size, t_kway),
                speedup,
            ),
        ],
    )
    assert speedup >= MIN_DECODE_SPEEDUP, (
        f"{name}: K-way decode only {speedup:.1f}x faster than the scalar "
        f"loop (criterion: >= {MIN_DECODE_SPEEDUP:.0f}x)"
    )


def test_kway_throughput_sweep(dataset):
    """Encode/decode MB/s across K ∈ {1, 4, 8, 16, auto}.

    Byte-identical reconstructions are asserted at every K; throughput is
    reported so the narrow-interleave regime (where the scalar fallback
    wins and ``auto`` refuses to go) stays visible.
    """
    name, syms = dataset
    t_scalar = _best(lambda: huffman.decode(huffman._encode_huf1(syms)), repeats=1)
    rows = []
    for k in K_SWEEP:
        t_enc = _best(lambda: huffman.encode(syms, k_streams=k), repeats=2)
        blob = huffman.encode(syms, k_streams=k)
        assert np.array_equal(huffman.decode(blob), syms), f"K={k} round-trip"
        t_dec = _best(lambda: huffman.decode(blob))
        rows.append(
            Row(
                "HUF2",
                str(k),
                _mb_s(syms.size, t_enc),
                _mb_s(syms.size, t_dec),
                t_scalar / t_dec,
            )
        )
        if k == "auto":
            perf_harness.record(
                "bench_entropy", f"encode_mb_s_{name}", _mb_s(syms.size, t_enc),
                "MB/s", higher_is_better=True,
            )
    emit(f"K-way interleave sweep ({name}, 64^3)", rows)


def test_encode_decode_deterministic(dataset):
    """Same input + same K -> byte-identical blobs (container determinism)."""
    _, syms = dataset
    assert huffman.encode(syms, k_streams=8) == huffman.encode(syms, k_streams=8)
    assert huffman.encode(syms, k_streams="auto") == huffman.encode(
        syms, k_streams="auto"
    )


def test_scalar_table_tradeoff():
    """Micro-benchmark behind the ``_scalar_tables`` list/ndarray threshold.

    Decodes a small stream (far below the vector cutoff) with both table
    representations and prints the trade-off; see the module docstring for
    the measured numbers this policy encodes. Asserts only correctness —
    the note, not the machine, is the contract.
    """
    rng = np.random.default_rng(3)
    syms = rng.integers(-2000, 2000, size=512).astype(np.int64)
    blob = huffman._encode_huf1(syms)
    assert np.array_equal(huffman.decode(blob), syms)

    n_symbols = 512
    alphabet = np.unique(syms)
    lengths = huffman.code_lengths(np.bincount(np.unique(syms, return_inverse=True)[1]))
    table_sym, table_len, max_len = huffman._flat_tables(alphabet, lengths)
    t_list = _best(lambda: (table_sym.tolist(), table_len.tolist()), repeats=5)
    t_nd = _best(lambda: huffman.decode(blob), repeats=5)
    emit(
        f"scalar-table representation (512 symbols, table 2^{max_len})",
        [
            MicroRow("tolist() prep alone", t_list * 1e6),
            MicroRow("ndarray-indexed full decode", t_nd * 1e6),
        ],
    )
    # The decision rule: tiny decodes must not pay the full tolist() tax.
    chosen = huffman._scalar_tables(table_sym, table_len, n_symbols)
    assert isinstance(chosen[0], np.ndarray) == (n_symbols * 8 < table_sym.size)
