"""Parity-redundant campaigns: write overhead and repair correctness.

Acceptance gates for the integrity/parity path (ISSUE 9):

* writing a campaign with ``parity=1`` must cost **<= 15%** more wall
  time than the same campaign with ``parity=0`` — the XOR stripes are
  computed over sealed segments the writer already holds in memory, so
  the only real additions are the XOR sweep and one extra file;
* destroying one data shard outright and running
  ``repair_sharded(commit=True)`` must restore the campaign to a
  scrub-clean state whose union read is value-identical to the
  undamaged read — repair reconstructs, never fabricates.

Metrics land in ``BENCH_bench_repair.json`` via :mod:`perf_harness`;
``tools/bench_compare.py`` gates the tracked ratios against the
committed baseline.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np
from conftest import bench_scale, emit, once

import perf_harness
from repro.amr.io import open_series, write_sharded_series
from repro.integrity import repair_sharded, scrub
from repro.sims import NyxConfig, nyx_step_stream

STEPS = 6
N_SHARDS = 3
FIELD = "baryon_density"
MAX_WRITE_OVERHEAD = 1.15


@dataclass(frozen=True)
class Row:
    path: str
    parity: int
    wall_s: float
    mb_s: float
    overhead: float


def _config() -> NyxConfig:
    # Floor of 16 (vs bench_sharded's 8): the overhead gate divides two
    # wall times, so the workload must dwarf per-run timing noise even at
    # the CI quarter scale.
    return NyxConfig(coarse_n=max(16, int(32 * bench_scale())))


def _steps(cfg):
    # Materialized once: both writers must compress identical inputs.
    return [s for s in nyx_step_stream(STEPS, cfg)]


def _best_of_interleaved(fn_a, fn_b, n=4):
    """Min wall time of each callable, alternating A/B each round so a
    load spike on the host penalizes both sides, not whichever ran
    second."""
    best_a = best_b = float("inf")
    for _ in range(n):
        for fn, which in ((fn_a, "a"), (fn_b, "b")):
            t0 = time.perf_counter()
            fn()
            wall = time.perf_counter() - t0
            if which == "a":
                best_a = min(best_a, wall)
            else:
                best_b = min(best_b, wall)
    return best_a, best_b


def test_parity_write_overhead_and_repair(benchmark, tmp_path):
    cfg = _config()
    steps = _steps(cfg)
    mb = sum(s.hierarchy.nbytes(FIELD) for s in steps) / 1e6
    plain = tmp_path / "plain.rphm"
    protected = tmp_path / "protected.rphm"

    def write_plain():
        write_sharded_series(plain, steps, n_shards=N_SHARDS,
                             codec="sz-lr", error_bound=1e-3, fields=[FIELD],
                             parallel="serial", overwrite=True, parity=0)

    def write_protected():
        write_sharded_series(protected, steps, n_shards=N_SHARDS,
                             codec="sz-lr", error_bound=1e-3, fields=[FIELD],
                             parallel="serial", overwrite=True, parity=1)

    once(benchmark, write_protected)
    plain_s, protected_s = _best_of_interleaved(write_plain, write_protected)
    overhead = protected_s / plain_s

    # The manifest's own accounting gives the byte overhead: parity file
    # sizes over the data shards they protect.
    with open_series(protected) as reader:
        parity_rows = list(reader.parity)
        shard_bytes = sum(Path(s).stat().st_size for s in reader.shards)
        truth = reader.select()
        victim = Path(reader.shards[1])
    parity_bytes = sum(row["bytes"] for row in parity_rows)
    assert parity_rows and shard_bytes > 0
    byte_overhead = parity_bytes / shard_bytes

    # Repair correctness: kill one data shard, reconstruct from parity,
    # and demand the read come back bit for bit.
    lost_mb = victim.stat().st_size / 1e6
    os.remove(victim)
    t0 = time.perf_counter()
    report = repair_sharded(protected, commit=True)
    repair_s = time.perf_counter() - t0
    assert report.committed and not report.unrecoverable
    assert scrub(protected).clean
    with open_series(protected) as reader:
        healed = reader.select()
    assert set(healed) == set(truth)
    for key, want in truth.items():
        assert np.array_equal(healed[key], want), key

    perf_harness.record(
        "bench_repair", "parity_write_overhead", overhead, "x",
        higher_is_better=False, tolerance=0.5,
    )
    perf_harness.record(
        "bench_repair", "parity_byte_overhead", byte_overhead, "x",
        higher_is_better=False, tolerance=0.25,
    )
    perf_harness.record(
        "bench_repair", "repair_throughput", lost_mb / repair_s, "MB/s",
        higher_is_better=True, tolerance=0.5,
    )
    emit(
        f"Parity write overhead ({STEPS}-step Nyx, {N_SHARDS} shards + "
        f"1 parity)",
        [
            Row("parity=0", 0, plain_s, mb / plain_s, 1.0),
            Row("parity=1", 1, protected_s, mb / protected_s, overhead),
        ],
    )
    assert overhead <= MAX_WRITE_OVERHEAD, (
        f"parity=1 write costs {overhead:.3f}x the parity=0 write "
        f"(need <= {MAX_WRITE_OVERHEAD}x)"
    )
