"""Extension bench: power-spectrum preservation under compression.

Cosmology post-analysis (the Nyx community's actual consumer of these
snapshots) judges reduction by P(k) fidelity. This bench sweeps error
bounds and reports the per-scale relative power distortion: small bounds
must leave the large scales untouched; damage concentrates at high k.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from conftest import emit, once

from repro.compression.registry import make_codec
from repro.metrics import power_spectrum, spectrum_distortion


@dataclass(frozen=True)
class Row:
    codec: str
    error_bound: float
    large_scale_err: float
    small_scale_err: float


def _sweep(ds) -> list[Row]:
    data = ds.uniform_field()
    rows = []
    for codec_name in ("sz-lr", "sz-interp"):
        codec = make_codec(codec_name)
        for eb in (1e-4, 1e-3, 1e-2):
            recon = codec.decompress(codec.compress(data, eb, mode="rel"))
            _, dist = spectrum_distortion(data, recon, n_bins=8)
            rows.append(
                Row(
                    codec=codec_name,
                    error_bound=eb,
                    large_scale_err=float(dist[0]),
                    small_scale_err=float(dist[-1]),
                )
            )
    return rows


def test_spectrum_preservation(benchmark, nyx):
    """P(k) distortion vs error bound on the Nyx density field."""
    rows = once(benchmark, _sweep, nyx)
    emit("Power-spectrum distortion |P'/P - 1| per scale", rows)
    for codec in ("sz-lr", "sz-interp"):
        series = sorted(
            (r for r in rows if r.codec == codec), key=lambda r: r.error_bound
        )
        # Large scales barely move at the smallest bound.
        assert series[0].large_scale_err < 0.02
        # Total spectral damage grows with eb.
        total = [r.large_scale_err + r.small_scale_err for r in series]
        assert total == sorted(total)
    # At the largest bound the heavy-tailed density's low-amplitude web is
    # flattened wholesale, so *large*-scale power takes the bigger relative
    # hit — the spectral face of the paper's Fig 11 structural distortion.
    # (On narrow-range Gaussian fields the damage is instead broadband /
    # high-k first; see tests/metrics/test_spectrum.py.)
    big = max((r for r in rows if r.codec == "sz-lr"), key=lambda r: r.error_bound)
    assert big.large_scale_err > 0.05
    # Spectrum sanity: the Nyx field is red (power falls with k).
    k, p = power_spectrum(nyx.uniform_field(), n_bins=8)
    assert p[0] > p[-1]
