"""Query-service load test: latency percentiles and bytes-per-query.

Acceptance gates for the serving layer (ISSUE 7), asserted here so a CI
run fails loudly rather than drifting:

* **cold cache**: a selective query touches at most **1.25x** the byte
  sum of its selection's extents (the planner's ``slack_frac=0.25``
  budget, measured end-to-end through the storage backend);
* **warm cache**: repeating the query touches **0** payload bytes and
  **0** metadata bytes — it is served entirely from the decoded-patch
  LRU;
* every served response stays byte-identical to a direct
  ``decompress_selection`` (spot-checked here; the full battery lives in
  ``tests/serve/``).

Metrics land in ``BENCH_bench_serve.json`` via :mod:`perf_harness`:
p50/p99 query latency over a randomized selection mix, sustained
throughput under 8 concurrent clients, and the cold bytes-per-extent
ratio. The zero-valued warm gates stay hard asserts in the body —
``tools/bench_compare.py`` cannot gate a metric whose baseline is 0.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass

import numpy as np
from conftest import bench_scale, emit, once

import perf_harness
from repro.amr.io import write_series
from repro.compression.amr_codec import decompress_selection
from repro.faults import FaultPlan
from repro.serve import QueryService
from repro.sims import NyxConfig, nyx_step_stream
from repro.storage import LocalFileBackend, RangedBackend

STEPS = 6
FIELD = "baryon_density"
N_CLIENTS = 8
QUERIES_PER_CLIENT = 12
LATENCY_SAMPLES = 48
MAX_COLD_RATIO = 1.25


@dataclass(frozen=True)
class Row:
    phase: str
    queries: int
    p50_ms: float
    p99_ms: float
    bytes_per_query: float


def _series(tmp_path):
    cfg = NyxConfig(coarse_n=max(8, int(32 * bench_scale())))
    path = tmp_path / "serve_bench.rph2s"
    write_series(path, nyx_step_stream(STEPS, cfg), codec="sz-lr",
                 error_bound=1e-3, fields=[FIELD])
    return path


def _selection_mix(seed: int, n: int) -> list[dict]:
    rng = random.Random(seed)
    mix = []
    for _ in range(n):
        sel = {"steps": rng.sample(range(STEPS), rng.randint(1, 2))}
        if rng.random() < 0.7:
            sel["levels"] = rng.sample(range(2), rng.randint(1, 2))
        if rng.random() < 0.3:
            sel["patches"] = [0]
        mix.append(sel)
    return mix


def _percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def test_serve_latency_and_bytes_per_query(benchmark, tmp_path):
    path = _series(tmp_path)

    async def scenario():
        svc = QueryService(path, workers=2)
        try:
            # -- Gate 1: cold bytes-per-query stays O(selection). --------
            _, cold = await svc.query_info(steps=[0, 2], levels=1)
            assert cold.extent_bytes > 0
            cold_ratio = cold.fetched_bytes / cold.extent_bytes
            assert cold.fetched_bytes <= int(MAX_COLD_RATIO * cold.extent_bytes), (
                f"cold query fetched {cold.fetched_bytes} bytes for "
                f"{cold.extent_bytes} extent bytes "
                f"(> {MAX_COLD_RATIO}x slack budget)"
            )

            # -- Gate 2: the warm repeat touches zero bytes. -------------
            _, warm = await svc.query_info(steps=[0, 2], levels=1)
            assert warm.fetched_bytes == 0, (
                f"warm repeat touched {warm.fetched_bytes} payload bytes"
            )
            assert warm.meta_bytes == 0
            assert warm.cache_hits == warm.keys

            # -- Spot-check byte identity against a direct read. ---------
            served = await svc.query(steps=1, levels=0)
            direct = decompress_selection(path, steps=1, levels=0)
            for key, arr in served.items():
                assert arr.tobytes() == direct[key].tobytes(), key

            # -- Latency percentiles over a randomized mix. --------------
            lat_cold: list[float] = []
            for sel in _selection_mix(11, LATENCY_SAMPLES):
                t0 = time.perf_counter()
                _, info = await svc.query_info(**sel)
                lat_cold.append((time.perf_counter() - t0) * 1e3)
            total_stats = svc.stats
            bytes_per_query = (
                total_stats["payload_bytes"] / total_stats["queries"]
            )
            lat_warm: list[float] = []
            for sel in _selection_mix(11, LATENCY_SAMPLES):
                t0 = time.perf_counter()
                _, info = await svc.query_info(**sel)
                assert info.fetched_bytes == 0  # fully warm by now
                lat_warm.append((time.perf_counter() - t0) * 1e3)

            # -- Throughput under concurrent clients. --------------------
            async def client(seed: int):
                for sel in _selection_mix(seed, QUERIES_PER_CLIENT):
                    await svc.query(**sel)

            t0 = time.perf_counter()
            await asyncio.gather(*[client(100 + i) for i in range(N_CLIENTS)])
            concurrent_s = time.perf_counter() - t0
            qps = N_CLIENTS * QUERIES_PER_CLIENT / concurrent_s
            return cold_ratio, lat_cold, lat_warm, bytes_per_query, qps
        finally:
            svc.close()

    async def faulty_scenario():
        # -- Resilience overhead: the same mix while 1% of GETs flake. ---
        # Probability rules fire on attempt 0 only, so every injected fault
        # is healed by the retry layer: the run completes, and the p99
        # prices the retries plus the resilience bookkeeping itself.
        plan = FaultPlan(seed=13)
        plan.probability(0.01)
        backend = RangedBackend(
            LocalFileBackend(), fault=plan, sleep=lambda s: None,
        )
        svc = QueryService(path, backend=backend, workers=2)
        try:
            lat: list[float] = []
            for sel in _selection_mix(23, LATENCY_SAMPLES):
                t0 = time.perf_counter()
                await svc.query(**sel)
                lat.append((time.perf_counter() - t0) * 1e3)
            return lat, plan.faults
        finally:
            svc.close()

    cold_ratio, lat_cold, lat_warm, bytes_per_query, qps = once(
        benchmark, lambda: asyncio.run(scenario())
    )
    lat_faulty, faults_fired = asyncio.run(faulty_scenario())

    p50, p99 = _percentile(lat_warm, 50), _percentile(lat_warm, 99)
    perf_harness.record(
        "bench_serve", "serve_cold_bytes_per_extent", cold_ratio, "x",
        higher_is_better=False, tolerance=0.25,
    )
    # Latency and throughput swing with the host; their tolerances are
    # wide trend-trackers. The deterministic gate is the bytes ratio
    # above (baseline 1.0, tolerance 0.25 == the 1.25x acceptance bound).
    perf_harness.record(
        "bench_serve", "serve_warm_p50_latency", p50, "ms",
        higher_is_better=False, tolerance=3.0,
    )
    perf_harness.record(
        "bench_serve", "serve_warm_p99_latency", p99, "ms",
        higher_is_better=False, tolerance=3.0,
    )
    perf_harness.record(
        "bench_serve", "serve_concurrent_throughput", qps, "queries/s",
        higher_is_better=True, tolerance=0.9,
    )
    faulty_p99 = _percentile(lat_faulty, 99)
    perf_harness.record(
        "bench_serve", "serve_faulty_p99_latency", faulty_p99, "ms",
        higher_is_better=False, tolerance=3.0,
    )
    emit(
        f"Query service over a {STEPS}-step Nyx series "
        f"({N_CLIENTS} concurrent clients for throughput)",
        [
            Row("cold", LATENCY_SAMPLES, _percentile(lat_cold, 50),
                _percentile(lat_cold, 99), bytes_per_query),
            Row("warm", LATENCY_SAMPLES, p50, p99, 0.0),
            Row("1% faults", LATENCY_SAMPLES, _percentile(lat_faulty, 50),
                faulty_p99, 0.0),
        ],
    )
    print(f"\ncold bytes/extent {cold_ratio:.3f}x (gate <= {MAX_COLD_RATIO}x); "
          f"concurrent throughput {qps:.0f} queries/s; "
          f"{faults_fired} faults retried under the 1% schedule")
