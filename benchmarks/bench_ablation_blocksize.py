"""Ablation: SZ-L/R block size (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``ablation_blocksize`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run ablation_blocksize``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_blocksize_ablation(benchmark, scale):
    """Run the ``ablation_blocksize`` registry entry at benchmark scale."""
    registry_entry(benchmark, "ablation_blocksize", scale)
