"""Ablation: SZ-L/R block size (the paper fixes 6x6x6; §3.3).

Sweeps the block edge over {4, 6, 8, 12} on both applications' fields and
reports ratio + PSNR, showing the 6-cube is a reasonable middle ground
between prediction locality (small blocks) and overhead (per-block DC and
coefficients).
"""

from __future__ import annotations

from dataclasses import dataclass

from conftest import emit, once

from repro.compression.sz_lr import SZLR
from repro.metrics.error import psnr


@dataclass(frozen=True)
class Row:
    app: str
    block_size: int
    cr: float
    psnr: float


def _sweep(datasets) -> list[Row]:
    rows = []
    for name, ds in datasets:
        data = ds.uniform_field()
        for bs in (4, 6, 8, 12):
            codec = SZLR(block_size=bs)
            blob = codec.compress(data, 1e-3, mode="rel")
            rows.append(
                Row(
                    app=name,
                    block_size=bs,
                    cr=data.nbytes / len(blob),
                    psnr=psnr(data, codec.decompress(blob)),
                )
            )
    return rows


def test_blocksize_ablation(benchmark, warpx, nyx):
    """Block-size sweep at eb 1e-3 relative."""
    rows = once(benchmark, _sweep, [("warpx", warpx), ("nyx", nyx)])
    emit("Ablation: SZ-L/R block size", rows)
    for app in ("warpx", "nyx"):
        series = [r for r in rows if r.app == app]
        best = max(series, key=lambda r: r.cr)
        worst = min(series, key=lambda r: r.cr)
        # Block size matters but not catastrophically (< 3x spread).
        assert best.cr / worst.cr < 3.0
