"""Extension bench: three-level hierarchies through the full pipeline.

The paper evaluates two-level datasets (Table 1) but its Figure 2 shows
deeper refinement ("finer and finest"); the substrate supports arbitrary
depth. This bench runs compression + both visualization methods on a
3-level Nyx-like dataset and checks the paper's orderings still hold with
an extra level in play.
"""

from __future__ import annotations

from dataclasses import dataclass

from conftest import emit, once

from repro.compression.amr_codec import compress_hierarchy, decompress_hierarchy
from repro.sims import NyxConfig
from repro.sims.nyx import nyx_multilevel_hierarchy
from repro.viz import crack_report, dual_cell_isosurface, resampling_isosurface


@dataclass(frozen=True)
class Row:
    method: str
    n_faces: int
    open_edges: int
    mean_gap: float


def _run(coarse_n: int) -> list[Row]:
    h = nyx_multilevel_hierarchy(NyxConfig(coarse_n=coarse_n), levels=3)
    container = compress_hierarchy(h, "sz-lr", 1e-3, fields=["baryon_density"])
    restored = decompress_hierarchy(container, h)
    rows = []
    for method, result in (
        ("resampling", resampling_isosurface(restored, "baryon_density", 2.0)),
        ("dual", dual_cell_isosurface(restored, "baryon_density", 2.0, "none")),
        ("dual+redundant", dual_cell_isosurface(restored, "baryon_density", 2.0, "redundant")),
    ):
        report = crack_report(result, restored)
        rows.append(
            Row(
                method=method,
                n_faces=result.n_faces,
                open_edges=report.open_edge_count,
                mean_gap=report.mean_gap,
            )
        )
    return rows


def test_three_level_pipeline(benchmark, scale):
    """Compress + extract + audit a 3-level hierarchy."""
    rows = once(benchmark, _run, max(16, int(round(32 * scale))))
    emit("Three-level Nyx: crack/gap audit on decompressed data", rows)
    by = {r.method: r for r in rows}
    assert all(r.n_faces > 0 for r in rows)
    # Orderings survive the third level:
    assert by["dual"].mean_gap > by["dual+redundant"].mean_gap
    assert by["resampling"].open_edges > 0
