"""Figure 14: 1-D interpolation-smoothing demo (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``fig14`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run fig14``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_fig14(benchmark, scale):
    """Run the ``fig14`` registry entry at benchmark scale."""
    registry_entry(benchmark, "fig14", scale)
