"""Figure 14: the 1-D interpolation-smoothing construction."""

from __future__ import annotations

from conftest import emit, once

from repro.experiments.figures import run_fig14


def test_fig14(benchmark):
    """Rebuild the paper's exact 1-D example and its generalization."""
    demo = once(benchmark, run_fig14)
    print()
    print("original:     ", demo.original.tolist())
    print("decompressed: ", demo.decompressed.tolist())
    print("re-sampled:   ", demo.resampled.tolist())
    assert demo.decompressed.tolist() == [1, 1, 1, 4, 4, 4, 7, 7, 7]
    assert demo.resampled.tolist() == [1, 1, 1, 2.5, 4, 4, 5.5, 7, 7, 7]
    assert demo.resampled_rmse < demo.dual_cell_rmse
    # Generalization: holds for longer signals and other block sizes.
    from repro.experiments.figures import run_fig14 as fig14

    for n, block in ((60, 4), (100, 5)):
        d = fig14(n, block)
        assert d.resampled_rmse <= d.dual_cell_rmse
