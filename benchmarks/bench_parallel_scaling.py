"""Parallel blockwise compression (paper §3.3: blocks are independent)."""

from __future__ import annotations

import numpy as np
from conftest import emit, once

from repro.parallel import compress_chunks, decompress_chunks


def test_chunked_compression_equivalence(benchmark, warpx):
    """Chunked parallel compression reassembles within the error bound."""
    data = warpx.uniform_field()

    def run():
        stream = compress_chunks(data, "sz-lr", 1e-3, mode="rel", n_chunks=4, parallel="thread")
        return stream, decompress_chunks(stream, parallel="thread")

    stream, out = once(benchmark, run)
    eb_abs = 1e-3 * (data.max() - data.min())
    assert np.abs(out - data).max() <= eb_abs * (1 + 1e-12)
    from dataclasses import make_dataclass

    Row = make_dataclass("Row", ["n_chunks", "compressed_bytes", "cr"])
    emit(
        "Chunked parallel compression",
        [Row(len(stream.blobs), stream.compressed_bytes, data.nbytes / stream.compressed_bytes)],
    )


def test_chunk_count_overhead(benchmark, warpx):
    """More chunks -> slightly more stream overhead, bounded ratio loss."""
    data = warpx.uniform_field()

    def sweep():
        sizes = {}
        for n in (1, 2, 4, 8):
            stream = compress_chunks(data, "sz-lr", 1e-3, mode="rel", n_chunks=n)
            sizes[n] = stream.compressed_bytes
        return sizes

    sizes = once(benchmark, sweep)
    from dataclasses import make_dataclass

    Row = make_dataclass("Row", ["n_chunks", "bytes"])
    emit("Chunk-count overhead", [Row(n, b) for n, b in sizes.items()])
    assert sizes[8] < 1.3 * sizes[1], "chunking overhead must stay bounded"
