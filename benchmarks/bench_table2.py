"""Table 2: CR / PSNR / SSIM sweep (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``table2`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run table2``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_table2(benchmark, scale):
    """Run the ``table2`` registry entry at benchmark scale."""
    registry_entry(benchmark, "table2", scale)
