"""Table 2: the full CR / PSNR / SSIM / R-SSIM sweep."""

from __future__ import annotations

from conftest import emit, once

from repro.experiments.table2 import run_table2


def test_table2(benchmark, scale):
    """Regenerate Table 2 across apps x codecs x error bounds."""
    rows = once(benchmark, run_table2, scale)
    emit("Table 2 (measured; paper_* columns are the paper's values)", rows)
    # Shape checks mirroring the paper:
    for app in ("warpx", "nyx"):
        for codec in ("sz-lr", "sz-interp"):
            series = sorted(
                (r for r in rows if r.app == app and r.codec == codec),
                key=lambda r: r.error_bound,
            )
            crs = [r.cr for r in series]
            psnrs = [r.psnr for r in series]
            assert crs == sorted(crs), "CR must grow with eb"
            assert psnrs == sorted(psnrs, reverse=True), "PSNR must fall with eb"
    # WarpX: SZ-Interp wins compression ratio at every bound.
    for eb in (1e-4, 1e-3, 1e-2):
        lr = next(r for r in rows if r.app == "warpx" and r.codec == "sz-lr" and r.error_bound == eb)
        it = next(r for r in rows if r.app == "warpx" and r.codec == "sz-interp" and r.error_bound == eb)
        assert it.cr > lr.cr
