"""Figure 2: refinement tracks collapsing structure over timesteps."""

from __future__ import annotations

from conftest import emit, once

from repro.experiments.figures import run_fig2


def test_fig02(benchmark, scale):
    """Generate three Nyx timesteps and regrid each."""
    rows = once(benchmark, run_fig2, scale)
    emit("Figure 2 (timesteps: growth, boxes, fine fraction, max density)", rows)
    maxima = [r.max_density for r in rows]
    assert maxima == sorted(maxima), "structure sharpens as the universe evolves"
    assert all(r.n_fine_boxes > 0 for r in rows)
