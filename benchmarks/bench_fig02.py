"""Figure 2: refinement tracks collapsing structure (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``fig02`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run fig02``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_fig02(benchmark, scale):
    """Run the ``fig02`` registry entry at benchmark scale."""
    registry_entry(benchmark, "fig02", scale)
