"""Selective decompression: random access must beat full decode (§3.3).

The patch-indexed container exists so a consumer can pull one patch, one
level, or one field without decompressing the rest. This benchmark builds
a 3-level Nyx-like hierarchy, compresses it once, and compares a full
decode against a single-patch selective decode — the latter must win by at
least 5x (it reads and decodes O(patch) bytes, not O(hierarchy)).
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass

import numpy as np
import pytest
from conftest import bench_scale, emit

import perf_harness

from repro.compression.amr_codec import (
    CompressedHierarchy,
    compress_hierarchy,
    decompress_selection,
)
from repro.sims import NyxConfig
from repro.sims.nyx import nyx_multilevel_hierarchy


@dataclass(frozen=True)
class Row:
    path: str
    patches: int
    seconds: float
    speedup: float


@pytest.fixture(scope="module")
def three_level():
    """3-level hierarchy at benchmark scale (coarse 16^3 at scale 0.5)."""
    coarse_n = max(8, int(32 * bench_scale()))
    return nyx_multilevel_hierarchy(NyxConfig(coarse_n=coarse_n), levels=3)


@pytest.fixture(scope="module")
def container_bytes(three_level):
    return compress_hierarchy(three_level, "sz-lr", 1e-3, fields=["baryon_density"]).tobytes()


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_selective_vs_full_decode(benchmark, three_level, container_bytes):
    """Single-patch selective decode >= 5x faster than decoding everything."""
    raw = container_bytes
    n_patches = sum(
        len(plist)
        for level in CompressedHierarchy.frombytes(raw).streams
        for plist in level.values()
    )
    assert n_patches >= 6, "3-level hierarchy should carry several patches"

    full_s = _best_of(lambda: decompress_selection(raw))
    selective = benchmark(lambda: decompress_selection(raw, levels=2, patches=0))
    sel_s = _best_of(lambda: decompress_selection(raw, levels=2, patches=0))
    speedup = full_s / sel_s
    perf_harness.record(
        "bench_selective", "selective_speedup", speedup, "x", higher_is_better=True
    )
    perf_harness.record(
        "bench_selective",
        "full_decode_s",
        full_s,
        "s",
        higher_is_better=False,
    )
    emit(
        "Selective vs full decode (3-level Nyx)",
        [
            Row("full", n_patches, full_s, 1.0),
            Row("selective(1 patch)", 1, sel_s, speedup),
        ],
    )
    assert len(selective) == 1
    assert speedup >= 5.0, f"selective decode only {speedup:.1f}x faster than full"


def test_selective_matches_full(three_level, container_bytes):
    """Randomly accessed patches are byte-for-byte the full-decode arrays."""
    full = decompress_selection(container_bytes)
    key = (2, "baryon_density", 0)
    one = decompress_selection(container_bytes, levels=2, patches=0)
    assert np.array_equal(one[key], full[key])


def test_per_level_extraction(benchmark, container_bytes):
    """Level-granular decode: the dual-cell viz access pattern."""
    out = benchmark(lambda: decompress_selection(container_bytes, levels=1))
    assert out and all(k[0] == 1 for k in out)


# ----------------------------------------------------------------------
# Grouped (level-batched) containers: random access must stay O(selection)
# ----------------------------------------------------------------------
class _CountingFile(io.BytesIO):
    """Seekable file wrapper that counts the bytes actually read."""

    def __init__(self, raw: bytes):
        super().__init__(raw)
        self.bytes_read = 0

    def read(self, size=-1):
        out = super().read(size)
        self.bytes_read += len(out)
        return out


@pytest.fixture(scope="module")
def grouped_bytes():
    """Grouped container over a many-small-patch level (the layout the
    level-batched path produces: shared codebooks + per-patch extents)."""
    from repro.amr.box import Box
    from repro.amr.boxarray import BoxArray
    from repro.amr.hierarchy import AMRHierarchy
    from repro.amr.level import AMRLevel
    from repro.amr.patch import Patch

    rng = np.random.default_rng(11)
    ps, grid = 16, (4, 4, 4)
    boxes, patches = [], []
    for i in range(grid[0]):
        for j in range(grid[1]):
            for k in range(grid[2]):
                box = Box.from_shape((ps,) * 3, lo=(i * ps, j * ps, k * ps))
                boxes.append(box)
                patches.append(Patch(box, rng.standard_normal((ps,) * 3)))
    level = AMRLevel(0, BoxArray(boxes), (1.0,) * 3, {"density": patches})
    h = AMRHierarchy(Box.from_shape(tuple(g * ps for g in grid)), [level], 2)
    return compress_hierarchy(
        h, "sz-lr", 1e-3, fields=["density"], batch="level"
    ).tobytes()


def test_grouped_selective_vs_full(benchmark, grouped_bytes):
    """Selective decode of one grouped patch still beats a full decode by
    >= 5x: the group section's per-patch extents keep random access
    per-member even though the codebook is shared."""
    full_s = _best_of(lambda: decompress_selection(grouped_bytes))
    selective = benchmark(lambda: decompress_selection(grouped_bytes, patches=0))
    sel_s = _best_of(lambda: decompress_selection(grouped_bytes, patches=0))
    speedup = full_s / sel_s
    perf_harness.record(
        "bench_selective", "grouped_selective_speedup", speedup, "x",
        higher_is_better=True,
    )
    assert len(selective) == 1
    assert speedup >= 5.0, (
        f"grouped selective decode only {speedup:.1f}x faster than full"
    )


def test_grouped_selection_byte_accounting(grouped_bytes):
    """Acceptance criterion: one-patch selection on a grouped container
    reads O(selection) payload bytes — footer + index + group *header*
    (codebook + extents) + one stream + one payload extent — never the
    other members' payloads."""
    counter = _CountingFile(grouped_bytes)
    out = decompress_selection(counter, patches=0)
    assert len(out) == 1
    fraction = counter.bytes_read / len(grouped_bytes)
    perf_harness.record(
        "bench_selective", "grouped_one_patch_read_fraction", fraction, "frac",
        higher_is_better=False,
    )
    # 1 of 64 patches: allow index + group header + slack, but reading a
    # quarter of the file would mean payload extents are not being used.
    assert fraction < 0.25, (
        f"one-patch selection read {fraction:.1%} of a 64-patch grouped "
        "container — random access is no longer O(selection)"
    )
    full_counter = _CountingFile(grouped_bytes)
    decompress_selection(full_counter)
    assert counter.bytes_read < full_counter.bytes_read / 4


def test_grouped_selection_matches_full(grouped_bytes):
    full = decompress_selection(grouped_bytes)
    one = decompress_selection(grouped_bytes, patches=3)
    key = (0, "density", 3)
    assert np.array_equal(one[key], full[key])
