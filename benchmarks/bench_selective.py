"""Selective decompression: random access must beat full decode (§3.3).

The patch-indexed container exists so a consumer can pull one patch, one
level, or one field without decompressing the rest. This benchmark builds
a 3-level Nyx-like hierarchy, compresses it once, and compares a full
decode against a single-patch selective decode — the latter must win by at
least 5x (it reads and decodes O(patch) bytes, not O(hierarchy)).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import pytest
from conftest import bench_scale, emit

import perf_harness

from repro.compression.amr_codec import (
    CompressedHierarchy,
    compress_hierarchy,
    decompress_selection,
)
from repro.sims import NyxConfig
from repro.sims.nyx import nyx_multilevel_hierarchy


@dataclass(frozen=True)
class Row:
    path: str
    patches: int
    seconds: float
    speedup: float


@pytest.fixture(scope="module")
def three_level():
    """3-level hierarchy at benchmark scale (coarse 16^3 at scale 0.5)."""
    coarse_n = max(8, int(32 * bench_scale()))
    return nyx_multilevel_hierarchy(NyxConfig(coarse_n=coarse_n), levels=3)


@pytest.fixture(scope="module")
def container_bytes(three_level):
    return compress_hierarchy(three_level, "sz-lr", 1e-3, fields=["baryon_density"]).tobytes()


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_selective_vs_full_decode(benchmark, three_level, container_bytes):
    """Single-patch selective decode >= 5x faster than decoding everything."""
    raw = container_bytes
    n_patches = sum(
        len(plist)
        for level in CompressedHierarchy.frombytes(raw).streams
        for plist in level.values()
    )
    assert n_patches >= 6, "3-level hierarchy should carry several patches"

    full_s = _best_of(lambda: decompress_selection(raw))
    selective = benchmark(lambda: decompress_selection(raw, levels=2, patches=0))
    sel_s = _best_of(lambda: decompress_selection(raw, levels=2, patches=0))
    speedup = full_s / sel_s
    perf_harness.record(
        "bench_selective", "selective_speedup", speedup, "x", higher_is_better=True
    )
    perf_harness.record(
        "bench_selective",
        "full_decode_s",
        full_s,
        "s",
        higher_is_better=False,
    )
    emit(
        "Selective vs full decode (3-level Nyx)",
        [
            Row("full", n_patches, full_s, 1.0),
            Row("selective(1 patch)", 1, sel_s, speedup),
        ],
    )
    assert len(selective) == 1
    assert speedup >= 5.0, f"selective decode only {speedup:.1f}x faster than full"


def test_selective_matches_full(three_level, container_bytes):
    """Randomly accessed patches are byte-for-byte the full-decode arrays."""
    full = decompress_selection(container_bytes)
    key = (2, "baryon_density", 0)
    one = decompress_selection(container_bytes, levels=2, patches=0)
    assert np.array_equal(one[key], full[key])


def test_per_level_extraction(benchmark, container_bytes):
    """Level-granular decode: the dual-cell viz access pattern."""
    out = benchmark(lambda: decompress_selection(container_bytes, levels=1))
    assert out and all(k[0] == 1 for k in out)
