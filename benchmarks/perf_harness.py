"""Shared performance-artifact harness for the benchmark suite.

Every ``bench_*.py`` module can turn its measurements into a committed,
machine-comparable artifact: call :func:`record` with named metrics
(throughput MB/s, speedup ratios, peak RSS, ...) and, when the
``REPRO_BENCH_JSON`` environment variable names a directory, the pytest
session hook in ``benchmarks/conftest.py`` writes one
``BENCH_<module>.json`` per recording module at exit. Those artifacts are
what ``tools/bench_compare.py`` diffs against the committed baselines in
``benchmarks/baselines/`` to gate >20% regressions in CI (the
``perf-smoke`` job).

Artifact schema (one file per benchmark module)::

    {
      "bench": "bench_entropy",
      "scale": 0.5,                      # REPRO_BENCH_SCALE at run time
      "peak_rss_mb": 312.4,              # process high-water mark at flush
      "metrics": {
        "decode_speedup_nyx_like": {
          "value": 19.2, "unit": "x", "higher_is_better": true,
          "tolerance": 0.2               # optional per-metric override
        },
        ...
      }
    }

Ratio metrics (speedups) travel across machines; absolute throughputs are
machine-dependent, so the committed baselines track ratios and treat
fresh absolute numbers as informational (``bench_compare`` only gates
metrics present in the baseline file).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Any

__all__ = ["record", "peak_rss_mb", "json_dir", "flush", "metric_count"]

#: Environment variable naming the directory BENCH_<name>.json files go to.
ENV_JSON_DIR = "REPRO_BENCH_JSON"

#: bench name -> metric name -> metric record.
_METRICS: dict[str, dict[str, dict[str, Any]]] = {}


def record(
    bench: str,
    metric: str,
    value: float,
    unit: str,
    higher_is_better: bool = True,
    tolerance: float | None = None,
) -> None:
    """Record one named measurement for the ``BENCH_<bench>.json`` artifact.

    Parameters
    ----------
    bench:
        Benchmark module name without extension (``"bench_entropy"``).
    metric:
        Stable metric key; baselines match on it, so renaming a metric
        resets its regression tracking.
    value, unit:
        The measurement and its unit (``"MB/s"``, ``"x"``, ``"MB"``).
    higher_is_better:
        Direction of goodness — throughput/speedup up, RSS/latency down.
    tolerance:
        Optional per-metric regression tolerance overriding
        ``bench_compare``'s default (fraction, e.g. ``0.2`` = 20%).
    """
    entry: dict[str, Any] = {
        "value": float(value),
        "unit": str(unit),
        "higher_is_better": bool(higher_is_better),
    }
    if tolerance is not None:
        entry["tolerance"] = float(tolerance)
    _METRICS.setdefault(bench, {})[metric] = entry


def metric_count(bench: str | None = None) -> int:
    """Number of metrics recorded so far (for one bench or all)."""
    if bench is not None:
        return len(_METRICS.get(bench, {}))
    return sum(len(m) for m in _METRICS.values())


def peak_rss_mb() -> float | None:
    """Process peak resident set size in MB, or ``None`` off-POSIX.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize both.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return peak / (1024 * 1024)
    return peak / 1024


def json_dir() -> Path | None:
    """Artifact output directory, or ``None`` when JSON emission is off."""
    value = os.environ.get(ENV_JSON_DIR, "").strip()
    return Path(value) if value else None


def flush() -> list[Path]:
    """Write one ``BENCH_<name>.json`` per recording module and reset.

    No-op (still resets) when :data:`ENV_JSON_DIR` is unset, so benchmark
    runs without the variable behave exactly as before. Returns the paths
    written. Called by the ``pytest_sessionfinish`` hook in
    ``benchmarks/conftest.py``.
    """
    out_dir = json_dir()
    written: list[Path] = []
    try:
        if out_dir is None:
            return written
        out_dir.mkdir(parents=True, exist_ok=True)
        rss = peak_rss_mb()
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
        for bench, metrics in sorted(_METRICS.items()):
            doc = {
                "bench": bench,
                "scale": scale,
                "peak_rss_mb": rss,
                "metrics": metrics,
            }
            path = out_dir / f"BENCH_{bench}.json"
            path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
            written.append(path)
    finally:
        _METRICS.clear()
    return written
