"""Shared performance-artifact harness for the benchmark suite.

Every ``bench_*.py`` module can turn its measurements into a committed,
machine-comparable artifact: call :func:`record` with named metrics
(throughput MB/s, speedup ratios, peak RSS, ...) and, when the
``REPRO_BENCH_JSON`` environment variable names a directory, the pytest
session hook in ``benchmarks/conftest.py`` writes one
``BENCH_<module>.json`` per recording module at exit. Those artifacts are
what ``tools/bench_compare.py`` diffs against the committed baselines in
``benchmarks/baselines/`` to gate >20% regressions in CI (the
``perf-smoke`` job).

Artifact schema (one file per benchmark module)::

    {
      "bench": "bench_entropy",
      "scale": 0.5,                      # REPRO_BENCH_SCALE at run time
      "peak_rss_mb": 312.4,              # process high-water mark at flush
      "metrics": {
        "decode_speedup_nyx_like": {
          "value": 19.2, "unit": "x", "higher_is_better": true,
          "tolerance": 0.2               # optional per-metric override
        },
        ...
      }
    }

Ratio metrics (speedups) travel across machines; absolute throughputs are
machine-dependent, so the committed baselines track ratios and treat
fresh absolute numbers as informational (``bench_compare`` only gates
metrics present in the baseline file).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "record",
    "peak_rss_mb",
    "json_dir",
    "flush",
    "session_flush",
    "metric_count",
    "write_artifact",
    "validate_artifact",
]

#: Environment variable naming the directory BENCH_<name>.json files go to.
ENV_JSON_DIR = "REPRO_BENCH_JSON"

#: bench name -> metric name -> metric record.
_METRICS: dict[str, dict[str, dict[str, Any]]] = {}


def record(
    bench: str,
    metric: str,
    value: float,
    unit: str,
    higher_is_better: bool = True,
    tolerance: float | None = None,
) -> None:
    """Record one named measurement for the ``BENCH_<bench>.json`` artifact.

    Parameters
    ----------
    bench:
        Benchmark module name without extension (``"bench_entropy"``).
    metric:
        Stable metric key; baselines match on it, so renaming a metric
        resets its regression tracking.
    value, unit:
        The measurement and its unit (``"MB/s"``, ``"x"``, ``"MB"``).
    higher_is_better:
        Direction of goodness — throughput/speedup up, RSS/latency down.
    tolerance:
        Optional per-metric regression tolerance overriding
        ``bench_compare``'s default (fraction, e.g. ``0.2`` = 20%).
    """
    entry: dict[str, Any] = {
        "value": float(value),
        "unit": str(unit),
        "higher_is_better": bool(higher_is_better),
    }
    if tolerance is not None:
        entry["tolerance"] = float(tolerance)
    _METRICS.setdefault(bench, {})[metric] = entry


def metric_count(bench: str | None = None) -> int:
    """Number of metrics recorded so far (for one bench or all)."""
    if bench is not None:
        return len(_METRICS.get(bench, {}))
    return sum(len(m) for m in _METRICS.values())


def peak_rss_mb() -> float | None:
    """Process peak resident set size in MB, or ``None`` off-POSIX.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize both.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return peak / (1024 * 1024)
    return peak / 1024


def json_dir() -> Path | None:
    """Artifact output directory, or ``None`` when JSON emission is off."""
    value = os.environ.get(ENV_JSON_DIR, "").strip()
    return Path(value) if value else None


def write_artifact(
    out_dir: Path,
    bench: str,
    metrics: Mapping[str, Mapping[str, Any]],
    scale: float,
    peak_rss: float | None = None,
) -> Path:
    """Write one ``BENCH_<bench>.json`` artifact and return its path.

    The single artifact writer shared by the pytest session hook
    (:func:`flush`) and the registry runner
    (``repro.experiments.registry``): both producers emit byte-identical
    documents for the same inputs. ``peak_rss`` is an optional,
    machine-volatile annotation — registry runs omit it so their
    artifacts stay deterministic and byte-comparable against committed
    baselines (the ``bench-registry-consistency`` CI check).
    """
    doc: dict[str, Any] = {
        "bench": bench,
        "scale": float(scale),
        "metrics": {k: dict(v) for k, v in metrics.items()},
    }
    if peak_rss is not None:
        doc["peak_rss_mb"] = peak_rss
    validate_artifact(doc)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{bench}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def validate_artifact(doc: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` matches the artifact schema.

    Schema: ``bench`` (str), ``scale`` (number), ``metrics`` (mapping of
    metric name -> record with numeric ``value``, str ``unit``, bool
    ``higher_is_better``, and optional ``tolerance`` in (0, 1]);
    ``peak_rss_mb`` is optional and may be null.
    """
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        raise ValueError("artifact 'bench' must be a non-empty string")
    if not isinstance(doc.get("scale"), (int, float)) or isinstance(doc.get("scale"), bool):
        raise ValueError("artifact 'scale' must be a number")
    metrics = doc.get("metrics")
    if not isinstance(metrics, Mapping) or not metrics:
        raise ValueError("artifact 'metrics' must be a non-empty mapping")
    for name, entry in metrics.items():
        if not isinstance(name, str) or not name:
            raise ValueError("metric names must be non-empty strings")
        if not isinstance(entry, Mapping):
            raise ValueError(f"metric {name!r} record must be a mapping")
        value = entry.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"metric {name!r} 'value' must be a number")
        if not isinstance(entry.get("unit"), str):
            raise ValueError(f"metric {name!r} 'unit' must be a string")
        if not isinstance(entry.get("higher_is_better"), bool):
            raise ValueError(f"metric {name!r} 'higher_is_better' must be a bool")
        if "tolerance" in entry:
            tol = entry["tolerance"]
            if not isinstance(tol, (int, float)) or isinstance(tol, bool) or not 0 < tol <= 1:
                raise ValueError(f"metric {name!r} 'tolerance' must be in (0, 1]")
        unknown = set(entry) - {"value", "unit", "higher_is_better", "tolerance"}
        if unknown:
            raise ValueError(f"metric {name!r} has unknown keys {sorted(unknown)}")


def flush() -> list[Path]:
    """Write one ``BENCH_<name>.json`` per recording module and reset.

    No-op (still resets) when :data:`ENV_JSON_DIR` is unset, so benchmark
    runs without the variable behave exactly as before. Returns the paths
    written. Called (through :func:`session_flush`) by the
    ``pytest_sessionfinish`` hook in ``benchmarks/conftest.py``.
    """
    out_dir = json_dir()
    written: list[Path] = []
    try:
        if out_dir is None:
            return written
        rss = peak_rss_mb()
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
        for bench, metrics in sorted(_METRICS.items()):
            written.append(write_artifact(out_dir, bench, metrics, scale, peak_rss=rss))
    finally:
        _METRICS.clear()
    return written


def session_flush() -> None:
    """The whole ``pytest_sessionfinish`` body: flush and report paths.

    Lives here (not in ``benchmarks/conftest.py``) so the legacy pytest
    benches and the registry runner share one artifact writer and one
    report format.
    """
    for path in flush():
        print(f"\nwrote {path}")
