"""Benchmark fixtures.

Benchmarks regenerate the paper's tables/figures while timing the dominant
computation. Grid scale comes from ``REPRO_BENCH_SCALE`` (default 0.5 — a
quarter of the default reproduction size per dimension) so the suite runs
in minutes on one core; raise it to approach paper-sized grids.

Setting ``REPRO_BENCH_JSON=<dir>`` makes any benchmark that records
metrics through ``perf_harness`` emit a ``BENCH_<module>.json`` artifact
at session end (see ``benchmarks/perf_harness.py`` and
``tools/bench_compare.py``).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import perf_harness
from repro.experiments.datasets import load_app


def pytest_sessionfinish(session, exitstatus):
    """Flush recorded perf metrics to ``BENCH_<name>.json`` artifacts.

    The flush-and-report body lives in ``perf_harness.session_flush`` so
    the registry runner (``repro.experiments.registry``) and this hook
    share one artifact writer.
    """
    perf_harness.session_flush()


def bench_scale() -> float:
    """Grid-size multiplier for the benchmark suite."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def warpx(scale):
    """The WarpX dataset at benchmark scale (session-cached)."""
    return load_app("warpx", scale)


@pytest.fixture(scope="session")
def nyx(scale):
    """The Nyx dataset at benchmark scale (session-cached)."""
    return load_app("nyx", scale)


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the benchmark timer (expensive end-to-end runs)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def registry_entry(benchmark, name: str, scale: float):
    """Run one registry experiment under the benchmark timer.

    The back-compat body of every ``bench_fig*/bench_table*/
    bench_ablation_*`` wrapper and of ``bench_registry.py``: executes the
    entry (its paper-shape checks raise on violation) and records its
    declared metrics so the session hook emits ``BENCH_<name>.json``.
    """
    from repro.experiments.registry import run_experiment

    result = once(benchmark, run_experiment, name, scale=scale)
    for metric, entry in result.metrics.items():
        perf_harness.record(
            name,
            metric,
            entry["value"],
            entry["unit"],
            higher_is_better=entry["higher_is_better"],
            tolerance=entry.get("tolerance"),
        )
    return result


def emit(title: str, rows) -> None:
    """Print a result table below the benchmark output."""
    from repro.experiments.report import format_table

    print()
    print(format_table(rows, title=title))
