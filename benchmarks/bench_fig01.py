"""Figure 1: crack/gap audit on original data (registry-backed).

Thin back-compat wrapper: the experiment body, its paper-shape checks,
and its gated metrics live in the ``fig01`` entry of the experiment
registry (``repro.experiments.fleet`` / ``repro.experiments.scenarios``;
run it directly with ``python -m repro.experiments run fig01``).
"""

from __future__ import annotations

from conftest import registry_entry


def test_fig01(benchmark, scale):
    """Run the ``fig01`` registry entry at benchmark scale."""
    registry_entry(benchmark, "fig01", scale)
