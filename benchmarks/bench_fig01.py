"""Figure 1: original-data iso-surfaces (cracks vs gaps vs fixed)."""

from __future__ import annotations

from conftest import emit, once

from repro.experiments.figures import run_fig1


def test_fig01(benchmark, scale):
    """Extract the three pipeline variants on original WarpX data."""
    rows = once(benchmark, run_fig1, scale)
    emit("Figure 1 (crack/gap audit on original data)", rows)
    resample, dual, fixed = rows
    assert resample.open_edge_count > 0, "re-sampling shows cracks (Fig 1a)"
    assert dual.mean_gap > resample.mean_gap, "dual-cell gaps exceed cracks (Fig 1b)"
    assert fixed.mean_gap < dual.mean_gap, "switching cells close the gap (Fig 1c)"
