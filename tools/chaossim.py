#!/usr/bin/env python
"""Deterministic chaos matrix for the serving stack.

``crashsim.py`` proves the *write* path's durability contract by killing
writers; this tool proves the *serve* path's resilience contract by
breaking the storage and decode layers underneath a live
:class:`~repro.serve.QueryService` with seeded
:class:`~repro.faults.FaultPlan` schedules, and holding every outcome to
a single oracle:

    Every query either returns bytes **identical** to a direct
    ``decompress_selection`` of the same selection, raises a **typed**
    ``ReproError`` (``DeadlineExceeded`` / ``Overloaded`` /
    ``StorageError`` / ``ServeError`` / ``FormatError``), or — with
    ``partial=True`` — returns a **well-formed partial**: every served
    patch bit-exact, every absent patch accounted for in ``missing``.
    Nothing may hang, leak a raw exception, or return wrong bytes. And
    once the fault schedule clears, the very next query must be exact —
    no fault may poison the cache, the single-flight table, or the
    admission gate.

The matrix sweeps that oracle across scenario classes:

==================== =========================================================
scenario             what it breaks
==================== =========================================================
clean                nothing (the oracle's control arm)
flake                every GET's first attempt (retries must hide it)
outage-window        the first k GETs fail hard, then the backend recovers
probability          each GET fails with seeded probability p
shard-outage         one shard's GETs all fail; non-partial queries must
                     fail typed, ``partial=True`` must serve around it
deadline             injected GET latency against a short ``timeout=``
decode-crash         a decode task dies with a raw ``RuntimeError``
                     (must surface as ``ServeError``, then recover)
overload             6 concurrent queries against a 1-slot admission gate
breaker              a dead shard trips its circuit breaker (fast-fails
                     must be typed; cooldown must readmit probes)
==================== =========================================================

Every schedule is seeded — two runs with the same ``--seed`` inject the
same faults at the same calls. Exit status is non-zero on any oracle
violation.

Usage::

    PYTHONPATH=src python tools/chaossim.py              # full matrix
    PYTHONPATH=src python tools/chaossim.py --quick      # CI subset
    PYTHONPATH=src python tools/chaossim.py --seed 7 -v
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
import time
from pathlib import Path

# Allow running straight from a checkout without PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.amr.io import write_series, write_sharded_series  # noqa: E402
from repro.compression.amr_codec import decompress_selection  # noqa: E402
from repro.errors import (  # noqa: E402
    DeadlineExceeded,
    FormatError,
    Overloaded,
    ReproError,
    ServeError,
    StorageError,
)
from repro.faults import FaultPlan, FaultyPool  # noqa: E402
from repro.parallel.pool import WorkerPool  # noqa: E402
from repro.serve import QueryService  # noqa: E402
from repro.sims import NyxConfig, nyx_step_stream  # noqa: E402
from repro.storage import LocalFileBackend, RangedBackend  # noqa: E402

DEFAULT_SEED = 20260808
SERIES_STEPS = 4
SHARD_STEPS = 6
N_SHARDS = 3

#: Per-query watchdog: a scenario that takes this long has hung, which
#: is itself an oracle violation (typed errors must be prompt).
WATCHDOG_S = 60.0

#: Errors the oracle accepts in place of bytes. Everything else —
#: including a raw RuntimeError escaping the stack — is a violation.
TYPED = (DeadlineExceeded, Overloaded, StorageError, ServeError, FormatError)


class Violation(AssertionError):
    """One broken oracle clause; carries the scenario context."""


def _selection_mix(n_steps: int) -> list[dict]:
    """A small deterministic selection mix touching every access shape."""
    return [
        {},
        {"steps": 0},
        {"steps": [1, n_steps - 1], "levels": 1},
        {"steps": list(range(n_steps)), "levels": 0},
        {"patches": [0]},
    ]


def build_corpus(root: Path) -> dict[str, Path]:
    """Write the (tiny) series + sharded campaign the matrix serves."""
    cfg = NyxConfig(coarse_n=8)
    series = root / "chaos.rph2s"
    write_series(series, nyx_step_stream(SERIES_STEPS, cfg),
                 codec="sz-lr", error_bound=1e-3, durability="step")
    sharded = root / "chaos.rphm"
    write_sharded_series(sharded, nyx_step_stream(SHARD_STEPS, cfg),
                         codec="sz-lr", error_bound=1e-3, n_shards=N_SHARDS,
                         parallel="serial", durability="step")
    return {"series": series, "sharded": sharded}


class Oracle:
    """Byte truth (direct reads, cached) plus the outcome checks."""

    def __init__(self):
        self._truth: dict[tuple, dict] = {}

    def truth(self, path: Path, sel: dict) -> dict:
        key = (str(path), tuple(sorted(
            (k, tuple(v) if isinstance(v, list) else v) for k, v in sel.items()
        )))
        if key not in self._truth:
            self._truth[key] = decompress_selection(str(path), **sel)
        return self._truth[key]

    @staticmethod
    def check_exact(ctx: str, served: dict, truth: dict) -> None:
        if set(served) != set(truth):
            raise Violation(
                f"{ctx}: served keys != truth keys "
                f"(missing {sorted(set(truth) - set(served))[:4]}, "
                f"extra {sorted(set(served) - set(truth))[:4]})"
            )
        for key, arr in served.items():
            if arr.tobytes() != truth[key].tobytes():
                raise Violation(f"{ctx}: wrong bytes for patch {key}")

    @staticmethod
    def check_partial(ctx: str, served: dict, missing: list, truth: dict) -> None:
        """A well-formed partial: served patches bit-exact, and the union
        of served and missing steps covers the selection exactly."""
        missing_steps = {m["step"] for m in missing}
        for m in missing:
            if not (m.get("file") and m.get("error") and m.get("detail")):
                raise Violation(f"{ctx}: malformed missing record {m}")
        want = {k for k in truth if k[0] not in missing_steps}
        if set(served) != want:
            raise Violation(
                f"{ctx}: partial served keys don't match "
                f"truth-minus-missing (missing steps {sorted(missing_steps)})"
            )
        if missing_steps - {k[0] for k in truth}:
            raise Violation(
                f"{ctx}: missing reports steps outside the selection: "
                f"{sorted(missing_steps - {k[0] for k in truth})}"
            )
        for key, arr in served.items():
            if arr.tobytes() != truth[key].tobytes():
                raise Violation(f"{ctx}: wrong bytes for partial patch {key}")


async def guarded(ctx: str, coro):
    """Outcome of one query under the hang watchdog.

    Returns ``("ok", result)`` or ``("err", typed-exception)``; raises
    :class:`Violation` for hangs and untyped escapes.
    """
    try:
        return "ok", await asyncio.wait_for(coro, WATCHDOG_S)
    except TYPED as exc:
        return "err", exc
    except asyncio.TimeoutError:
        raise Violation(f"{ctx}: query hung past {WATCHDOG_S}s") from None
    except BaseException as exc:
        raise Violation(
            f"{ctx}: untyped {type(exc).__name__} escaped: {exc}"
        ) from exc


def _backend(plan: FaultPlan, max_retries: int = 2) -> RangedBackend:
    return RangedBackend(
        LocalFileBackend(), readahead=1 << 12, max_retries=max_retries,
        sleep=lambda s: None, fault=plan,
    )


async def _recovery_probe(name: str, oracle: Oracle, svc: QueryService,
                          path: Path, plan: FaultPlan) -> None:
    """After the schedule clears, the very next query must be exact."""
    plan.clear()
    sel = {"steps": 0}
    tag, got = await guarded(f"{name}/recovery", svc.query(**sel))
    if tag != "ok":
        raise Violation(f"{name}: clean query after clear() failed: {got}")
    oracle.check_exact(f"{name}/recovery", got, oracle.truth(path, sel))
    if svc._inflight:
        raise Violation(f"{name}: single-flight table leaked entries")


# ---------------------------------------------------------------------------
# Scenarios. Each returns a human-readable outcome summary string.
# ---------------------------------------------------------------------------
async def scenario_clean(oracle: Oracle, corpus: dict, seed: int) -> str:
    hits = 0
    for label, n in (("series", SERIES_STEPS), ("sharded", SHARD_STEPS)):
        path = corpus[label]
        svc = QueryService(path, workers=2)
        try:
            for sel in _selection_mix(n):
                tag, got = await guarded(f"clean/{label}", svc.query(**sel))
                if tag != "ok":
                    raise Violation(f"clean/{label}: fault-free query raised {got}")
                oracle.check_exact(f"clean/{label}/{sel}", got,
                                   oracle.truth(path, sel))
                hits += 1
        finally:
            svc.close()
    return f"{hits} fault-free queries exact"


async def scenario_flake(oracle: Oracle, corpus: dict, seed: int) -> str:
    path = corpus["series"]
    plan = FaultPlan(seed=seed)
    plan.flake()  # every GET's first attempt fails; one retry heals
    svc = QueryService(path, backend=_backend(plan), workers=2)
    try:
        for sel in _selection_mix(SERIES_STEPS):
            tag, got = await guarded("flake", svc.query(**sel))
            if tag != "ok":
                raise Violation(f"flake: retryable fault leaked: {got}")
            oracle.check_exact(f"flake/{sel}", got, oracle.truth(path, sel))
        fired = plan.faults
        if fired == 0:
            raise Violation("flake: schedule never fired (matrix is vacuous)")
        await _recovery_probe("flake", oracle, svc, path, plan)
        return f"{fired} first-attempt faults hidden by retries"
    finally:
        svc.close()


async def scenario_outage_window(oracle: Oracle, corpus: dict, seed: int) -> str:
    path = corpus["series"]
    plan = FaultPlan(seed=seed)
    svc = QueryService(path, backend=_backend(plan, max_retries=0), workers=2,
                       breaker_threshold=None)  # the breaker gets its own arm
    failed = exact = 0
    try:
        plan.first(6, kind="storage")  # hard outage for the next 6 GETs
        for sel in _selection_mix(SERIES_STEPS):
            tag, got = await guarded("outage-window", svc.query(**sel))
            if tag == "ok":
                oracle.check_exact(f"outage-window/{sel}", got,
                                   oracle.truth(path, sel))
                exact += 1
            else:
                if not isinstance(got, StorageError):
                    raise Violation(f"outage-window: wrong error type: {got!r}")
                failed += 1
        if not failed:
            raise Violation("outage-window: outage never surfaced")
        await _recovery_probe("outage-window", oracle, svc, path, plan)
        return f"{failed} typed failures during the window, {exact} exact after"
    finally:
        svc.close()


async def scenario_probability(oracle: Oracle, corpus: dict, seed: int) -> str:
    path = corpus["sharded"]
    plan = FaultPlan(seed=seed)
    plan.probability(0.2)
    svc = QueryService(path, backend=_backend(plan), workers=2,
                       breaker_threshold=None)
    exact = failed = 0
    try:
        for sel in _selection_mix(SHARD_STEPS) * 2:
            tag, got = await guarded("probability", svc.query(**sel))
            if tag == "ok":
                oracle.check_exact(f"probability/{sel}", got,
                                   oracle.truth(path, sel))
                exact += 1
            else:
                if not isinstance(got, StorageError):
                    raise Violation(f"probability: wrong error type: {got!r}")
                failed += 1
        fired = plan.faults
        await _recovery_probe("probability", oracle, svc, path, plan)
        return (f"p=0.2 schedule fired {fired} faults: "
                f"{exact} exact, {failed} typed failures")
    finally:
        svc.close()


async def scenario_shard_outage(oracle: Oracle, corpus: dict, seed: int) -> str:
    path = corpus["sharded"]
    plan = FaultPlan(seed=seed)
    svc = QueryService(path, backend=_backend(plan, max_retries=0), workers=2,
                       breaker_threshold=None)
    try:
        victim = svc._segments[0][0]  # shard file owning step 0
        victim_steps = sorted(
            s for s, (f, _, _) in svc._segments.items() if f == victim
        )
        plan.always(lambda name, off, length: name == victim, kind="storage")
        # Non-partial: the outage must surface typed, nothing else.
        tag, got = await guarded("shard-outage", svc.query(steps=0))
        if tag != "err" or not isinstance(got, StorageError):
            raise Violation(f"shard-outage: expected StorageError, got {got!r}")
        # Partial: survivors exact, the victim's steps accounted for.
        tag, got = await guarded("shard-outage",
                                 svc.query_info(partial=True))
        if tag != "ok":
            raise Violation(f"shard-outage: partial query raised {got!r}")
        served, info = got
        truth = oracle.truth(path, {})
        oracle.check_partial("shard-outage", served, info.missing, truth)
        missing_steps = sorted({m["step"] for m in info.missing})
        if missing_steps != victim_steps:
            raise Violation(
                f"shard-outage: missing {missing_steps} != victim's "
                f"steps {victim_steps}"
            )
        await _recovery_probe("shard-outage", oracle, svc, path, plan)
        return (f"dead shard failed typed; partial served "
                f"{len(served)} patches around steps {missing_steps}")
    finally:
        svc.close()


async def scenario_deadline(oracle: Oracle, corpus: dict, seed: int) -> str:
    path = corpus["series"]
    plan = FaultPlan(seed=seed)
    svc = QueryService(path, backend=_backend(plan), workers=2)
    try:
        await svc.plan(steps=0)  # catalogs in; payload still cold
        plan.latency(0.5)
        tag, got = await guarded("deadline",
                                 svc.query(steps=0, levels=0, timeout=0.05))
        if tag != "err" or not isinstance(got, DeadlineExceeded):
            raise Violation(f"deadline: expected DeadlineExceeded, got {got!r}")
        await _recovery_probe("deadline", oracle, svc, path, plan)
        return "late query failed typed; immediate retry exact"
    finally:
        svc.close()


async def scenario_decode_crash(oracle: Oracle, corpus: dict, seed: int) -> str:
    path = corpus["series"]
    plan = FaultPlan(seed=seed)
    pool = FaultyPool(WorkerPool("thread", workers=2), plan)
    svc = QueryService(path, pool=pool, cache_bytes=None)
    try:
        plan.nth(0, match="pool:*", kind="crash")
        tag, got = await guarded("decode-crash", svc.query(steps=0, levels=0))
        if tag != "err" or not isinstance(got, ServeError):
            raise Violation(
                f"decode-crash: raw crash must surface as ServeError, "
                f"got {got!r}"
            )
        if "decode worker pool" not in str(got):
            raise Violation(f"decode-crash: untyped message: {got}")
        await _recovery_probe("decode-crash", oracle, svc, path, plan)
        return "worker crash surfaced as ServeError; next query exact"
    finally:
        svc.close()
        pool.close()


async def scenario_overload(oracle: Oracle, corpus: dict, seed: int) -> str:
    path = corpus["series"]
    plan = FaultPlan(seed=seed)
    svc = QueryService(path, backend=_backend(plan), workers=2,
                       cache_bytes=None, max_inflight=1, max_queue=0)
    try:
        await svc.plan(steps=0)
        plan.latency(0.2)  # hold each admitted query long enough to shed
        outcomes = await asyncio.gather(
            *[guarded("overload", svc.query(steps=0, levels=0))
              for _ in range(6)]
        )
        shed = exact = 0
        truth = oracle.truth(path, {"steps": 0, "levels": 0})
        for tag, got in outcomes:
            if tag == "ok":
                oracle.check_exact("overload", got, truth)
                exact += 1
            else:
                if not isinstance(got, Overloaded):
                    raise Violation(f"overload: wrong error type: {got!r}")
                if got.retry_after is None or got.retry_after <= 0:
                    raise Violation("overload: shed reply carries no retry_after")
                shed += 1
        if not exact:
            raise Violation("overload: no query was admitted at all")
        if not shed:
            raise Violation("overload: 6-vs-1 load never shed (gate inert)")
        await _recovery_probe("overload", oracle, svc, path, plan)
        return f"{exact} admitted exact, {shed} shed with retry_after"
    finally:
        svc.close()


async def scenario_breaker(oracle: Oracle, corpus: dict, seed: int) -> str:
    path = corpus["sharded"]
    plan = FaultPlan(seed=seed)
    svc = QueryService(path, backend=_backend(plan, max_retries=0), workers=2,
                       breaker_threshold=2, breaker_cooldown=0.2)
    try:
        victim = svc._segments[0][0]
        plan.always(lambda name, off, length: name == victim, kind="storage")
        fast_fails = 0
        for _ in range(5):
            tag, got = await guarded("breaker", svc.query(steps=0))
            if tag != "err" or not isinstance(got, StorageError):
                raise Violation(f"breaker: expected StorageError, got {got!r}")
            if "circuit breaker open" in str(got):
                fast_fails += 1
        if not fast_fails:
            raise Violation("breaker: 5 consecutive failures never tripped it")
        breaker_stats = svc.stats["breakers"][victim]
        if breaker_stats["trips"] < 1:
            raise Violation(f"breaker: stats show no trip: {breaker_stats}")
        plan.clear()
        await asyncio.sleep(0.25)  # past the cooldown: probe readmitted
        tag, got = await guarded("breaker", svc.query(steps=0))
        if tag != "ok":
            raise Violation(f"breaker: post-cooldown probe failed: {got!r}")
        oracle.check_exact("breaker/recovery", got,
                           oracle.truth(path, {"steps": 0}))
        return (f"tripped after 2 failures, {fast_fails} fast-fails, "
                f"recovered after cooldown")
    finally:
        svc.close()


#: name -> (in quick subset, scenario coroutine)
SCENARIOS = {
    "clean": (True, scenario_clean),
    "flake": (True, scenario_flake),
    "outage-window": (False, scenario_outage_window),
    "probability": (False, scenario_probability),
    "shard-outage": (True, scenario_shard_outage),
    "deadline": (True, scenario_deadline),
    "decode-crash": (True, scenario_decode_crash),
    "overload": (False, scenario_overload),
    "breaker": (False, scenario_breaker),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--quick", action="store_true",
                        help="CI subset (the starred scenarios only)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="fault-schedule seed (default %(default)s)")
    parser.add_argument("--only", metavar="NAME", action="append",
                        help="run only this scenario (repeatable)")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    chosen = [
        (name, fn) for name, (quick, fn) in SCENARIOS.items()
        if (not args.quick or quick) and (not args.only or name in args.only)
    ]
    if not chosen:
        parser.error(f"no scenario matches {args.only!r} "
                     f"(have {', '.join(SCENARIOS)})")

    failures = 0
    with tempfile.TemporaryDirectory(prefix="chaossim-") as tmp:
        root = Path(tmp)
        t0 = time.perf_counter()
        corpus = build_corpus(root)
        if args.verbose:
            print(f"corpus built in {time.perf_counter() - t0:.1f}s "
                  f"({', '.join(p.name for p in corpus.values())})")
        oracle = Oracle()
        for name, fn in chosen:
            t0 = time.perf_counter()
            try:
                summary = asyncio.run(fn(oracle, corpus, args.seed))
            except Violation as exc:
                failures += 1
                print(f"FAIL {name:<14} {exc}")
            except ReproError as exc:
                failures += 1
                print(f"FAIL {name:<14} scenario errored: "
                      f"{type(exc).__name__}: {exc}")
            else:
                print(f"ok   {name:<14} {summary} "
                      f"[{time.perf_counter() - t0:.1f}s]")
    total = len(chosen)
    print(f"\n{total - failures}/{total} scenarios hold the oracle "
          f"(seed {args.seed}{', quick' if args.quick else ''})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
