#!/usr/bin/env python
"""Deterministic corruption matrix for the self-healing storage stack.

``crashsim.py`` kills writers and ``chaossim.py`` breaks the serving
stack's I/O underneath live queries; this tool damages the *bytes at
rest* — bit-rot, torn segments, deleted shards, damaged parity — and
holds the scrub/repair/serve triangle to one oracle:

    ``scrub()`` must report **zero findings** on clean files and must
    **flag every seeded corruption**. For any damage leaving at most
    ``p`` lost members per parity stripe, ``repair_sharded`` must
    restore the damaged segments **bit-exactly** (the parity index's
    recorded crcs are the proof), after which scrub is clean again and
    every read matches a pristine-copy ``decompress_selection``. Damage
    beyond parity coverage must be reported ``unrecoverable`` — never
    silently "repaired" with wrong bytes. And ``repro.serve`` over a
    parity-carrying campaign with a destroyed shard must answer
    complete, byte-exact, **non-partial** queries by reconstructing on
    the fly (visible in ``stats["repairs"]``).

The matrix sweeps that oracle across scenario classes:

==================== =========================================================
scenario             what it damages
==================== =========================================================
clean                nothing (zero-findings control arm, series + campaign)
bit-rot              one flipped byte inside a sealed shard segment
torn-segment         a shard truncated mid-segment (index + footer lost)
deleted-shard        one data shard file removed entirely
damaged-parity       one flipped byte inside a parity shard's XOR blocks
multi-loss           two shards of one parity group lost (> p): must be
                     flagged unrecoverable, never fabricated
serve-heal           a destroyed shard under a live ``QueryService``
==================== =========================================================

Every byte position is seeded — two runs with the same ``--seed``
corrupt the same offsets. Exit status is non-zero on any oracle
violation.

Usage::

    PYTHONPATH=src python tools/scrubsim.py              # full matrix
    PYTHONPATH=src python tools/scrubsim.py --quick      # CI subset
    PYTHONPATH=src python tools/scrubsim.py --seed 7 -v
"""

from __future__ import annotations

import argparse
import os
import random
import shutil
import sys
import tempfile
import time
import zlib
from pathlib import Path

# Allow running straight from a checkout without PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.amr.io import write_series, write_sharded_series  # noqa: E402
from repro.compression.amr_codec import decompress_selection  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.insitu.series import SEAL_SIZE, SeriesReader  # noqa: E402
from repro.insitu.sharded import ShardedSeriesReader  # noqa: E402
from repro.integrity import repair_sharded, scrub  # noqa: E402
from repro.serve import InProcessClient  # noqa: E402
from repro.sims import NyxConfig, nyx_step_stream  # noqa: E402

DEFAULT_SEED = 20260808
SERIES_STEPS = 4
SHARD_STEPS = 6
N_SHARDS = 3
PARITY = 1


class Violation(AssertionError):
    """One broken oracle clause; carries the scenario context."""


# ---------------------------------------------------------------------------
# Corpus: one pristine template, copied per scenario before damage.
# ---------------------------------------------------------------------------
def build_corpus(root: Path) -> dict:
    """Write the pristine series + parity-carrying campaign template and
    capture the byte/metadata oracle before anything is damaged."""
    cfg = NyxConfig(coarse_n=8)
    template = root / "template"
    template.mkdir()
    series = template / "scrub.rph2s"
    write_series(series, nyx_step_stream(SERIES_STEPS, cfg),
                 codec="sz-lr", error_bound=1e-3, durability="step")
    manifest = template / "scrub.rphm"
    write_sharded_series(manifest, nyx_step_stream(SHARD_STEPS, cfg),
                         codec="sz-lr", error_bound=1e-3, n_shards=N_SHARDS,
                         parallel="serial", durability="step", parity=PARITY)
    reader = ShardedSeriesReader.open(manifest)
    shards = [template / os.path.basename(s) for s in reader.shards]
    parity = [template / row["name"] for row in reader.parity]
    reader.close()
    # Per-shard sealed extents (step, offset, segment+seal length) — the
    # byte ranges parity proves, so the post-repair bit-exactness oracle.
    extents: dict[str, list[tuple[int, int, int]]] = {}
    for shard in shards:
        sub = SeriesReader.open(shard)
        extents[shard.name] = [
            (e.step, e.offset, e.length + SEAL_SIZE) for e in sub.step_entries
        ]
        sub.close()
    return {
        "template": template,
        "series": series.name,
        "manifest": manifest.name,
        "shards": [s.name for s in shards],
        "parity": [p.name for p in parity],
        "extents": extents,
        "pristine": {
            p.name: p.read_bytes() for p in (*shards, *parity, series)
        },
        "truth": decompress_selection(str(manifest)),
    }


def stage(corpus: dict, root: Path, name: str) -> Path:
    """A fresh working copy of the template for one scenario."""
    work = root / name
    shutil.copytree(corpus["template"], work)
    return work


def flip_byte(path: Path, pos: int) -> None:
    blob = bytearray(path.read_bytes())
    blob[pos] ^= 0xFF
    path.write_bytes(bytes(blob))


# ---------------------------------------------------------------------------
# Oracle clauses.
# ---------------------------------------------------------------------------
def check_scrub_clean(ctx: str, target: Path) -> None:
    report = scrub(str(target))
    if not report.clean:
        raise Violation(
            f"{ctx}: scrub reports {len(report.findings)} finding(s) on a "
            f"file that should be clean: "
            f"{[f.kind for f in report.findings][:6]}"
        )


def check_scrub_flags(ctx: str, target: Path, damaged_file: str) -> None:
    report = scrub(str(target))
    if report.clean:
        raise Violation(f"{ctx}: scrub missed the seeded corruption")
    named = {os.path.basename(f.file) for f in report.findings}
    if damaged_file not in named:
        raise Violation(
            f"{ctx}: no finding names the damaged file {damaged_file} "
            f"(findings: {[(f.kind, os.path.basename(f.file)) for f in report.findings][:6]})"
        )


def check_reads_exact(ctx: str, manifest: Path, truth: dict) -> None:
    served = decompress_selection(str(manifest))
    if set(served) != set(truth):
        raise Violation(f"{ctx}: repaired campaign serves wrong key set")
    for key, arr in served.items():
        if arr.tobytes() != truth[key].tobytes():
            raise Violation(f"{ctx}: wrong bytes for patch {key}")


def check_segments_exact(ctx: str, work: Path, corpus: dict,
                         shard_name: str) -> None:
    """Every sealed extent of the repaired shard is bit-identical to the
    pristine template — the exact-bytes oracle parity promises."""
    pristine = corpus["pristine"][shard_name]
    repaired = (work / shard_name).read_bytes()
    for step, offset, length in corpus["extents"][shard_name]:
        if repaired[offset:offset + length] != pristine[offset:offset + length]:
            raise Violation(
                f"{ctx}: step {step} of {shard_name} not bit-exact after "
                f"repair"
            )


def repair_and_verify(ctx: str, work: Path, corpus: dict,
                      damaged: str) -> str:
    """Run the dry-run + commit repair cycle and hold every clause."""
    manifest = work / corpus["manifest"]
    dry = repair_sharded(str(manifest))
    if not dry.reconstructed:
        raise Violation(f"{ctx}: dry run found nothing to reconstruct")
    if dry.unrecoverable:
        raise Violation(
            f"{ctx}: single-loss damage reported unrecoverable: "
            f"{[(d.shard, d.step) for d in dry.unrecoverable]}"
        )
    report = repair_sharded(str(manifest), commit=True)
    check_scrub_clean(f"{ctx}/post-repair", manifest)
    check_segments_exact(ctx, work, corpus, damaged)
    check_reads_exact(ctx, manifest, corpus["truth"])
    return (f"{len(report.reconstructed)} segment(s) restored bit-exact, "
            f"scrub clean after commit")


# ---------------------------------------------------------------------------
# Scenarios. Each returns a human-readable outcome summary string.
# ---------------------------------------------------------------------------
def scenario_clean(corpus: dict, root: Path, rng: random.Random) -> str:
    work = stage(corpus, root, "clean")
    check_scrub_clean("clean/series", work / corpus["series"])
    check_scrub_clean("clean/campaign", work / corpus["manifest"])
    for shard in corpus["shards"]:
        check_scrub_clean(f"clean/{shard}", work / shard)
    return (f"zero findings across series, campaign, and "
            f"{len(corpus['shards'])} shards")


def scenario_bit_rot(corpus: dict, root: Path, rng: random.Random) -> str:
    work = stage(corpus, root, "bit-rot")
    victim = rng.choice(corpus["shards"])
    step, offset, length = rng.choice(corpus["extents"][victim])
    pos = offset + rng.randrange(length - SEAL_SIZE)  # inside the segment
    flip_byte(work / victim, pos)
    check_scrub_flags("bit-rot", work / corpus["manifest"], victim)
    summary = repair_and_verify("bit-rot", work, corpus, victim)
    return f"flipped byte {pos} of {victim} step {step}: {summary}"


def scenario_torn_segment(corpus: dict, root: Path,
                          rng: random.Random) -> str:
    work = stage(corpus, root, "torn-segment")
    victim = rng.choice(corpus["shards"])
    step, offset, length = corpus["extents"][victim][-1]
    cut = offset + rng.randrange(1, length)  # mid-segment: index is gone too
    with open(work / victim, "r+b") as handle:
        handle.truncate(cut)
    check_scrub_flags("torn-segment", work / corpus["manifest"], victim)
    summary = repair_and_verify("torn-segment", work, corpus, victim)
    return f"tore {victim} at byte {cut} (step {step} half-lost): {summary}"


def scenario_deleted_shard(corpus: dict, root: Path,
                           rng: random.Random) -> str:
    work = stage(corpus, root, "deleted-shard")
    victim = rng.choice(corpus["shards"])
    os.remove(work / victim)
    check_scrub_flags("deleted-shard", work / corpus["manifest"], victim)
    summary = repair_and_verify("deleted-shard", work, corpus, victim)
    return f"resurrected {victim} from parity: {summary}"


def scenario_damaged_parity(corpus: dict, root: Path,
                            rng: random.Random) -> str:
    work = stage(corpus, root, "damaged-parity")
    victim = rng.choice(corpus["parity"])
    size = (work / victim).stat().st_size
    pos = rng.randrange(8, size)  # anywhere past the fixed header
    flip_byte(work / victim, pos)
    check_scrub_flags("damaged-parity", work / corpus["manifest"], victim)
    # Data shards are intact, so every read stays exact even before repair.
    check_reads_exact("damaged-parity/pre", work / corpus["manifest"],
                      corpus["truth"])
    report = repair_sharded(str(work / corpus["manifest"]), commit=True)
    if report.unrecoverable:
        raise Violation("damaged-parity: intact data reported unrecoverable")
    check_scrub_clean("damaged-parity/post", work / corpus["manifest"])
    check_reads_exact("damaged-parity/post", work / corpus["manifest"],
                      corpus["truth"])
    return (f"flipped byte {pos} of {victim}: parity rebuilt "
            f"({len(report.parity_rebuilt)} file(s)), scrub clean")


def scenario_multi_loss(corpus: dict, root: Path,
                        rng: random.Random) -> str:
    work = stage(corpus, root, "multi-loss")
    # All data shards share one group at parity=1: two deletions exceed p.
    lost = rng.sample(corpus["shards"], 2)
    for victim in lost:
        os.remove(work / victim)
    report = repair_sharded(str(work / corpus["manifest"]))
    if not report.unrecoverable:
        raise Violation(
            "multi-loss: 2 lost members per stripe (> p=1) must be "
            "unrecoverable, not silently repaired"
        )
    blamed = {d.shard for d in report.unrecoverable}
    if not blamed.issuperset(set(lost)):
        raise Violation(
            f"multi-loss: unrecoverable report blames {sorted(blamed)}, "
            f"not the lost shards {sorted(lost)}"
        )
    return (f"lost {lost[0]} + {lost[1]}: "
            f"{len(report.unrecoverable)} member(s) correctly unrecoverable")


def scenario_serve_heal(corpus: dict, root: Path,
                        rng: random.Random) -> str:
    work = stage(corpus, root, "serve-heal")
    victim = rng.choice(corpus["shards"])
    os.remove(work / victim)
    truth = corpus["truth"]
    with InProcessClient(str(work / corpus["manifest"])) as client:
        served, info = client.query_info()
        stats = client.stats()
    if info.partial or info.missing:
        raise Violation(
            f"serve-heal: query degraded (partial={info.partial}, "
            f"missing={info.missing}) despite parity coverage"
        )
    if set(served) != set(truth):
        raise Violation("serve-heal: healed query serves wrong key set")
    for key, arr in served.items():
        if arr.tobytes() != truth[key].tobytes():
            raise Violation(f"serve-heal: wrong bytes for patch {key}")
    if info.repairs < 1 or stats["repairs"] < 1:
        raise Violation(
            f"serve-heal: reconstruction invisible in accounting "
            f"(info.repairs={info.repairs}, stats={stats['repairs']})"
        )
    return (f"destroyed {victim}; query complete and byte-exact with "
            f"{info.repairs} on-the-fly repair(s)")


#: name -> (in quick subset, scenario function)
SCENARIOS = {
    "clean": (True, scenario_clean),
    "bit-rot": (True, scenario_bit_rot),
    "torn-segment": (False, scenario_torn_segment),
    "deleted-shard": (True, scenario_deleted_shard),
    "damaged-parity": (False, scenario_damaged_parity),
    "multi-loss": (False, scenario_multi_loss),
    "serve-heal": (True, scenario_serve_heal),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--quick", action="store_true",
                        help="CI subset (the starred scenarios only)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="corruption-offset seed (default %(default)s)")
    parser.add_argument("--only", metavar="NAME", action="append",
                        help="run only this scenario (repeatable)")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    chosen = [
        (name, fn) for name, (quick, fn) in SCENARIOS.items()
        if (not args.quick or quick) and (not args.only or name in args.only)
    ]
    if not chosen:
        parser.error(f"no scenario matches {args.only!r} "
                     f"(have {', '.join(SCENARIOS)})")

    failures = 0
    with tempfile.TemporaryDirectory(prefix="scrubsim-") as tmp:
        root = Path(tmp)
        t0 = time.perf_counter()
        corpus = build_corpus(root)
        if args.verbose:
            print(f"corpus built in {time.perf_counter() - t0:.1f}s "
                  f"({SHARD_STEPS} steps x {N_SHARDS} shards, "
                  f"parity={PARITY})")
        for name, fn in chosen:
            t0 = time.perf_counter()
            rng = random.Random(args.seed ^ zlib.crc32(name.encode()))
            try:
                summary = fn(corpus, root, rng)
            except Violation as exc:
                failures += 1
                print(f"FAIL {name:<14} {exc}")
            except ReproError as exc:
                failures += 1
                print(f"FAIL {name:<14} scenario errored: "
                      f"{type(exc).__name__}: {exc}")
            else:
                print(f"ok   {name:<14} {summary} "
                      f"[{time.perf_counter() - t0:.1f}s]")
    total = len(chosen)
    print(f"\n{total - failures}/{total} scenarios hold the oracle "
          f"(seed {args.seed}{', quick' if args.quick else ''})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
