#!/usr/bin/env python
"""Gate performance regressions against committed benchmark baselines.

Reads the ``BENCH_<name>.json`` artifacts a benchmark run emitted (see
``benchmarks/perf_harness.py``), pairs each with the committed baseline of
the same filename in ``benchmarks/baselines/``, and **fails (exit 1) when
any tracked metric regresses more than the threshold** (default 20%)
against its baseline value.

Tracking policy
---------------
A metric is *tracked* iff it appears in the baseline file — the committed
baseline is the tracking list. Metrics present only in the current run
(e.g. machine-dependent absolute throughputs on a new box) and artifacts
with no baseline at all are reported informationally and never fail the
run, which is what makes the first run of a new benchmark green by
construction. A baseline metric may carry a per-metric ``tolerance``
overriding the default threshold.

Direction comes from the metric's ``higher_is_better`` flag: throughput
and speedup regress downward, RSS and latency regress upward.

Refreshing baselines is one command — ``--write-baseline`` copies the
run's artifacts into ``benchmarks/baselines/`` (commit the result) instead
of hand-editing JSON. ``--consolidate PATH`` additionally merges every
artifact of the run into a single ``BENCH_perf.json`` document (the CI
perf-smoke job uploads it as the run's one-stop perf record).

Two stricter modes back the registry-driven CI gating:

* ``--require-baseline`` turns "artifact with no committed baseline" from
  an informational note into a failure that prints the exact
  ``--write-baseline`` command to run — CI passes it so a newly
  registered experiment cannot silently ship ungated.
* ``--check-consistency`` ignores thresholds entirely and demands each
  current artifact be **byte-identical** to its committed baseline. Only
  meaningful for deterministic artifacts (the registry runner emits
  those: fixed seeds, rounded metrics, no RSS annotation); the
  ``bench-registry-consistency`` CI job uses it to catch committed
  baselines that went stale against the code.

Usage::

    REPRO_BENCH_JSON=bench-out PYTHONPATH=src pytest benchmarks/bench_entropy.py
    python tools/bench_compare.py --current bench-out
    python tools/bench_compare.py --current bench-out --threshold 0.1
    python tools/bench_compare.py --current bench-out --write-baseline
    python tools/bench_compare.py --current bench-out --require-baseline
    python tools/bench_compare.py --current bench-out --check-consistency
    python tools/bench_compare.py --current bench-out --consolidate bench-out/BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"
DEFAULT_THRESHOLD = 0.20

#: Filename of the consolidated artifact; excluded from the comparison
#: scan so a consolidated file sitting in --current is never diffed.
CONSOLIDATED_NAME = "BENCH_perf.json"


def load_artifact(path: Path) -> dict:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bench_compare: cannot read {path}: {exc}")
    if not isinstance(doc.get("metrics"), dict):
        raise SystemExit(f"bench_compare: {path} has no 'metrics' mapping")
    return doc


def change_ratio(current: float, base: float, higher_is_better: bool) -> float:
    """Fractional regression (positive = worse), direction-normalized."""
    if base == 0:
        return 0.0
    delta = (current - base) / abs(base)
    return -delta if higher_is_better else delta


def compare_artifact(
    current: dict, baseline: dict, threshold: float, name: str
) -> tuple[list[str], list[str]]:
    """Return (failures, notes) for one artifact pair."""
    failures: list[str] = []
    notes: list[str] = []
    base_metrics = baseline["metrics"]
    cur_metrics = current["metrics"]
    for metric, base in sorted(base_metrics.items()):
        if metric not in cur_metrics:
            failures.append(
                f"{name}: tracked metric {metric!r} missing from current run"
            )
            continue
        cur = cur_metrics[metric]
        tol = float(base.get("tolerance", threshold))
        hib = bool(base.get("higher_is_better", True))
        reg = change_ratio(float(cur["value"]), float(base["value"]), hib)
        verdict = f"{abs(reg) * 100:.1f}% {'worse' if reg > 0 else 'better'}"
        line = (
            f"{name}: {metric} = {cur['value']:.4g} {cur.get('unit', '')}"
            f" vs baseline {base['value']:.4g}"
            f" ({verdict}, tolerance {tol * 100:.0f}%)"
        )
        if reg > tol:
            failures.append("REGRESSION " + line)
        else:
            notes.append("ok         " + line)
    for metric in sorted(set(cur_metrics) - set(base_metrics)):
        cur = cur_metrics[metric]
        notes.append(
            f"info       {name}: untracked metric {metric} = "
            f"{cur['value']:.4g} {cur.get('unit', '')} (not in baseline)"
        )
    return failures, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=Path,
        required=True,
        help="directory holding the run's BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help=f"committed baseline directory (default {DEFAULT_BASELINE_DIR})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="default allowed fractional regression (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="copy the run's artifacts into the baseline directory (the "
        "documented way to refresh baselines) instead of comparing",
    )
    parser.add_argument(
        "--require-baseline",
        action="store_true",
        help="fail (instead of noting informationally) when a current "
        "artifact has no committed baseline; prints the exact "
        "--write-baseline command to run. CI passes this so new "
        "benchmarks cannot ship ungated.",
    )
    parser.add_argument(
        "--check-consistency",
        action="store_true",
        help="require every current artifact to be byte-identical to its "
        "committed baseline (no thresholds); catches stale committed "
        "baselines for deterministic registry artifacts",
    )
    parser.add_argument(
        "--consolidate",
        type=Path,
        default=None,
        metavar="PATH",
        help="also merge every artifact into one consolidated JSON document "
        f"(conventionally {CONSOLIDATED_NAME})",
    )
    args = parser.parse_args(argv)

    artifacts = sorted(
        p for p in args.current.glob("BENCH_*.json") if p.name != CONSOLIDATED_NAME
    )
    if not artifacts:
        print(f"bench_compare: no BENCH_*.json artifacts in {args.current}")
        return 1

    if args.consolidate is not None:
        benches: dict = {}
        for path in artifacts:
            doc = load_artifact(path)
            name = doc["bench"]
            if name in benches:
                raise SystemExit(
                    f"bench_compare: two artifacts both claim bench {name!r}"
                )
            benches[name] = doc
        merged = {"format": "bench-perf", "benches": benches}
        args.consolidate.parent.mkdir(parents=True, exist_ok=True)
        args.consolidate.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"bench_compare: consolidated {len(artifacts)} artifact(s) -> {args.consolidate}")

    if args.write_baseline:
        args.baseline.mkdir(parents=True, exist_ok=True)
        for path in artifacts:
            target = args.baseline / path.name
            target.write_text(path.read_text())
            print(f"bench_compare: baseline written {target}")
        print(
            f"bench_compare: {len(artifacts)} baseline(s) refreshed — commit "
            f"{args.baseline} to start tracking them"
        )
        return 0

    if args.check_consistency:
        failures = []
        for path in artifacts:
            load_artifact(path)  # malformed current artifacts fail loudly
            base_path = args.baseline / path.name
            if not base_path.exists():
                failures.append(
                    f"{path.name}: no committed baseline at {base_path}"
                )
            elif base_path.read_bytes() != path.read_bytes():
                failures.append(
                    f"{path.name}: committed baseline differs from a fresh run "
                    "(stale baseline or nondeterministic artifact)"
                )
        for line in failures:
            print(line, file=sys.stderr)
        if failures:
            print(
                f"bench_compare: {len(failures)} artifact(s) out of sync with "
                f"{args.baseline}; refresh with:\n"
                f"  python tools/bench_compare.py --current {args.current} "
                "--write-baseline\nand commit the result",
                file=sys.stderr,
            )
            return 1
        print(
            f"bench_compare: {len(artifacts)} artifact(s) byte-identical to "
            f"committed baselines"
        )
        return 0

    failures: list[str] = []
    notes: list[str] = []
    for path in artifacts:
        current = load_artifact(path)
        base_path = args.baseline / path.name
        if not base_path.exists():
            if args.require_baseline:
                failures.append(
                    f"MISSING    {path.name}: no committed baseline at "
                    f"{base_path}; every artifact must be tracked "
                    "(--require-baseline). Refresh with:\n"
                    f"  python tools/bench_compare.py --current {args.current} "
                    "--write-baseline\nand commit the result"
                )
            else:
                notes.append(
                    f"info       {path.name}: no committed baseline at {base_path} "
                    "— informational first run; commit this artifact to start tracking"
                )
            continue
        f, n = compare_artifact(
            current, load_artifact(base_path), args.threshold, path.name
        )
        failures.extend(f)
        notes.extend(n)

    for line in notes:
        print(line)
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        print(
            f"bench_compare: {len(failures)} failure(s) — tracked metrics "
            f"regressed beyond tolerance or baselines missing",
            file=sys.stderr,
        )
        return 1
    print(f"bench_compare: {len(artifacts)} artifact(s) checked, no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
