#!/usr/bin/env python
"""Documentation checker: intra-repo Markdown links and Python snippets.

Run from anywhere::

    python tools/check_docs.py [repo_root]

Two checks, both zero-dependency:

1. **Link resolution** — every relative link/image target in every
   tracked ``*.md`` file must exist on disk (external ``http(s)``/
   ``mailto`` links and pure ``#anchors`` are skipped; a ``#fragment``
   on a relative link is stripped before the existence check).
2. **Python snippets** — every ```` ```python ```` fence in the Markdown
   files must at least *compile* (syntax check; nothing is executed), so
   README/docs examples cannot silently rot into syntax errors.

Exit status 0 when clean; 1 with one line per problem otherwise. Wired
into CI as the ``docs`` job and exercised by ``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

__all__ = ["iter_markdown_files", "check_links", "check_python_snippets", "main"]

#: Directories never scanned for Markdown.
_SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", "node_modules", ".venv"}

#: Inline links/images: [text](target) / ![alt](target). Targets with
#: spaces or nested parens are not used in this repo and are ignored.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: Fenced python code blocks (``` or ~~~, optional info-string suffix).
_FENCE_RE = re.compile(
    r"^(?P<fence>```+|~~~+)python\s*$(?P<body>.*?)^(?P=fence)\s*$",
    re.MULTILINE | re.DOTALL,
)


def iter_markdown_files(root: Path) -> list[Path]:
    """All Markdown files under ``root``, skipping vendored/cache dirs."""
    out = []
    for path in sorted(root.rglob("*.md")):
        if not _SKIP_DIRS.intersection(p.name for p in path.parents):
            out.append(path)
    return out


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "ftp://"))


def check_links(root: Path) -> list[str]:
    """Return one error string per unresolved intra-repo link."""
    errors = []
    for md in iter_markdown_files(root):
        for match in _LINK_RE.finditer(md.read_text(encoding="utf-8")):
            target = match.group(1)
            if _is_external(target) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (md.parent / rel).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md.relative_to(root)}: broken link -> {target}"
                )
    return errors


def check_python_snippets(root: Path) -> list[str]:
    """Return one error string per non-compiling ```python fence."""
    errors = []
    for md in iter_markdown_files(root):
        text = md.read_text(encoding="utf-8")
        for i, match in enumerate(_FENCE_RE.finditer(text)):
            snippet = match.group("body")
            try:
                compile(snippet, f"{md.name}:snippet-{i}", "exec")
            except SyntaxError as exc:
                errors.append(
                    f"{md.relative_to(root)}: python snippet {i} does not "
                    f"compile: {exc.msg} (line {exc.lineno})"
                )
    return errors


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: check the repo rooted at ``argv[0]`` (default: the
    parent of this script's directory)."""
    args = sys.argv[1:] if argv is None else argv
    root = Path(args[0]).resolve() if args else Path(__file__).resolve().parents[1]
    problems = check_links(root) + check_python_snippets(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    files = iter_markdown_files(root)
    print(f"checked {len(files)} Markdown files under {root}: "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
