#!/usr/bin/env python
"""Deterministic crash injection for RPH2S series files.

The durability contract of :mod:`repro.insitu` — a killed writer loses at
most the step in flight — is only real if something keeps killing writers.
This tool deterministically simulates every structurally interesting crash
against a *finished* series file by truncating or corrupting it at offsets
derived from the file's actual layout:

==================== =========================================================
offset class         what it simulates
==================== =========================================================
mid-payload          killed while streaming a segment's patch bytes
mid-segment-footer   killed while writing a segment's own RPH2 footer
mid-seal             killed while writing the 64-byte step seal record
step-boundary        killed exactly on a sealed step boundary (clean crash)
append-resume        killed right after ``append_to``'s eager truncation
                     of the old index/footer (all seals intact, no index)
mid-index            killed while writing the series timestep index
mid-footer           killed while writing the 28-byte series footer
post-footer-garbage  a partial rewrite appended bytes after a valid footer
index-bitflip        bit rot inside the timestep index (crc must catch it)
footer-bitflip       bit rot inside the series footer magic
payload-bitflip      bit rot inside one segment (that step must be dropped,
                     every other step must survive)
seal-bitflip         bit rot inside one seal record (the step must still be
                     recovered through its segment's own footer)
adjacent-seal-bitflip  bit rot destroying two consecutive seal records (both
                     segments must still be recovered via their own footers
                     — the resync path must not skip the one in the gap)
==================== =========================================================

Each :class:`InjectionPoint` carries the exact set of step numbers that a
recovery scan MUST return for the damaged variant — the oracle the
crash-injection CI matrix asserts against
(``tests/insitu/test_crash_recovery.py``).

**Sharded mode** (:func:`sharded_injection_points` / :func:`apply_sharded`)
models killing one writer of a multi-shard RPHM campaign mid-step: every
shard is truncated to its crash shape (footerless, all steps sealed — the
real on-disk state when ``close()`` never ran), the victim shard is
additionally cut inside its in-flight step's payload, and the manifest is
reverted to its non-final form (or torn). The oracle is the union of the
per-shard survivor sets; every non-victim shard must keep *all* its steps
bit-exactly.

Usage::

    PYTHONPATH=src python tools/crashsim.py list run.rph2s
    PYTHONPATH=src python tools/crashsim.py apply run.rph2s --point 3 -o broken.rph2s
    PYTHONPATH=src python tools/crashsim.py all run.rph2s -o variants/
    PYTHONPATH=src python tools/crashsim.py sharded run.rphm -o variants/
"""

from __future__ import annotations

import argparse
import io
import random
import sys
from dataclasses import dataclass
from pathlib import Path

# Allow running straight from a checkout without PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.insitu.series import SEAL_SIZE, SeriesReader, _SERIES_FOOTER  # noqa: E402

#: Seed for the (deterministic) choice of bitflip offsets within a region.
DEFAULT_SEED = 20260729
#: Truncation fractions inside a segment payload.
DEFAULT_FRACS = (0.15, 0.5, 0.85)
#: Appended after a valid footer by the post-footer-garbage class.
GARBAGE = b"\x89CRASHSIM-GARBAGE\x00" * 7


@dataclass(frozen=True)
class InjectionPoint:
    """One deterministic crash/corruption to inject.

    ``action`` is ``"truncate"`` (cut the file at ``offset``),
    ``"corrupt"`` (xor the byte at ``offset`` — and every byte in
    ``extra_offsets`` — with 0xFF), or ``"append"`` (add :data:`GARBAGE`
    after the intact file; ``offset`` is EOF). ``expect_steps`` is the
    oracle: the exact step numbers a recovery scan must salvage,
    bit-exactly, from the damaged variant (steps recovered through the
    footer fallback appear with their synthesized, monotone numbers).
    """

    klass: str
    action: str
    offset: int
    expect_steps: tuple[int, ...]
    label: str
    extra_offsets: tuple[int, ...] = ()


def apply(raw: bytes, point: InjectionPoint) -> bytes:
    """Produce the damaged variant of ``raw`` for one injection point."""
    if point.action == "truncate":
        return raw[: point.offset]
    if point.action == "corrupt":
        out = bytearray(raw)
        for at in (point.offset, *point.extra_offsets):
            out[at] ^= 0xFF
        return bytes(out)
    if point.action == "append":
        return raw + GARBAGE
    raise ValueError(f"unknown action {point.action!r}")


def injection_points(
    raw: bytes,
    payload_fracs: tuple[float, ...] = DEFAULT_FRACS,
    seed: int = DEFAULT_SEED,
) -> list[InjectionPoint]:
    """Enumerate every structurally interesting injection for ``raw``.

    The offsets are derived from the file's real layout (timestep index
    rows + footer), so the matrix adapts to any series; ``seed`` fixes the
    bitflip positions inside each region.
    """
    rng = random.Random(seed)
    with SeriesReader(io.BytesIO(raw)) as reader:
        entries = list(reader.step_entries)
        index_offset = reader._index_offset
    total = len(raw)
    index_length = total - _SERIES_FOOTER.size - index_offset

    def expected(cut=None, broken_seals=(), dropped=()) -> tuple[int, ...]:
        """Model the scanner: a step whose segment survives is recovered;
        with its original number when its seal also survives, else with a
        synthesized monotone number (footer fallback)."""
        out: list[int] = []
        for e in entries:
            if e.step in dropped:
                continue
            if cut is not None and e.offset + e.length > cut:
                continue  # segment itself incomplete: unrecoverable
            sealed = e.step not in broken_seals and (
                cut is None or e.offset + e.length + SEAL_SIZE <= cut
            )
            out.append(e.step if sealed else (out[-1] + 1 if out else 0))
        return tuple(out)

    all_steps = expected()

    def seal_flip(e) -> int:
        return e.offset + e.length + rng.randrange(0, SEAL_SIZE)

    points: list[InjectionPoint] = []
    for i, e in enumerate(entries):
        seal_end = e.offset + e.length + SEAL_SIZE
        for frac in payload_fracs:
            cut = e.offset + max(1, int(e.length * frac))
            points.append(InjectionPoint(
                "mid-payload", "truncate", cut, expected(cut=cut),
                f"step {e.step} payload truncated at {frac:.0%}",
            ))
        cut = e.offset + e.length - 10
        points.append(InjectionPoint(
            "mid-segment-footer", "truncate", cut, expected(cut=cut),
            f"step {e.step} cut inside its segment footer",
        ))
        cut = seal_end - 20
        points.append(InjectionPoint(
            "mid-seal", "truncate", cut, expected(cut=cut),
            f"step {e.step} cut inside its seal record",
        ))
        points.append(InjectionPoint(
            "step-boundary", "truncate", seal_end, expected(cut=seal_end),
            f"clean crash right after step {e.step} sealed",
        ))
        flip = e.offset + rng.randrange(5, e.length - 1)
        points.append(InjectionPoint(
            "payload-bitflip", "corrupt", flip,
            expected(dropped={e.step}),
            f"bit rot inside step {e.step}'s segment",
        ))
        points.append(InjectionPoint(
            "seal-bitflip", "corrupt", seal_flip(e),
            expected(broken_seals={e.step}),
            f"bit rot inside step {e.step}'s seal record",
        ))
        if i + 1 < len(entries):
            nxt = entries[i + 1]
            points.append(InjectionPoint(
                "adjacent-seal-bitflip", "corrupt", seal_flip(e),
                expected(broken_seals={e.step, nxt.step}),
                f"bit rot destroying the seals of steps {e.step} and {nxt.step}",
                extra_offsets=(seal_flip(nxt),),
            ))
    points.append(InjectionPoint(
        "append-resume", "truncate", index_offset, all_steps,
        "killed right after append_to's eager truncation "
        "(index/footer gone, every seal intact)",
    ))
    points.append(InjectionPoint(
        "mid-index", "truncate", index_offset + max(1, index_length // 2),
        all_steps, "cut inside the series timestep index",
    ))
    points.append(InjectionPoint(
        "mid-footer", "truncate", total - 10, all_steps,
        "cut inside the 28-byte series footer",
    ))
    points.append(InjectionPoint(
        "post-footer-garbage", "append", total, all_steps,
        "garbage appended after a valid footer",
    ))
    points.append(InjectionPoint(
        "index-bitflip", "corrupt",
        index_offset + rng.randrange(0, max(1, index_length)), all_steps,
        "bit rot inside the series timestep index",
    ))
    points.append(InjectionPoint(
        "footer-bitflip", "corrupt", total - 5, all_steps,
        "bit rot inside the series footer magic",
    ))
    return points


@dataclass(frozen=True)
class ShardedCrashPoint:
    """One deterministic kill of a sharded campaign.

    ``cuts`` maps each shard basename to the offset its file is truncated
    at (every shard is cut — a killed campaign never wrote any shard's
    index/footer); the ``victim``'s cut lands inside its in-flight step.
    ``manifest`` is ``"nonfinal"`` (the initial manifest a real kill
    leaves behind) or ``"torn"`` (the manifest itself is half-written, so
    recovery must rediscover the shards by name). ``expect_steps`` is the
    union survivor oracle across shards.
    """

    victim: str
    cuts: dict[str, int]
    expect_steps: tuple[int, ...]
    label: str
    manifest: str = "nonfinal"


def sharded_injection_points(
    manifest_path: Path,
    payload_fracs: tuple[float, ...] = DEFAULT_FRACS,
) -> list[ShardedCrashPoint]:
    """Enumerate kill scenarios for a *finished* sharded campaign.

    Derived from each shard's real layout: the clean-boundary kill (all
    shards sealed), one mid-payload kill per shard per fraction (that
    shard loses exactly its last step; all other shards keep everything),
    and a torn-manifest variant exercising shard rediscovery.
    """
    from repro.insitu.sharded import parse_manifest

    man = parse_manifest(Path(manifest_path).read_bytes())
    base = Path(manifest_path).parent
    layout: dict[str, tuple[list, int]] = {}
    for row in man["shards"]:
        with SeriesReader.open(base / row["name"]) as reader:
            layout[row["name"]] = (list(reader.step_entries), reader._index_offset)
    all_steps = tuple(sorted(
        e.step for entries, _ in layout.values() for e in entries
    ))
    sealed_cuts = {name: idx for name, (_, idx) in layout.items()}

    points = [ShardedCrashPoint(
        victim="", cuts=dict(sealed_cuts), expect_steps=all_steps,
        label="campaign killed between steps (every shard sealed)",
    )]
    for name, (entries, _) in layout.items():
        if not entries:
            continue
        last = entries[-1]
        survivors = tuple(s for s in all_steps if s != last.step)
        for frac in payload_fracs:
            cuts = dict(sealed_cuts)
            cuts[name] = last.offset + max(1, int(last.length * frac))
            points.append(ShardedCrashPoint(
                victim=name, cuts=cuts, expect_steps=survivors,
                label=f"{name} killed at {frac:.0%} of step {last.step}'s payload",
            ))
    points.append(ShardedCrashPoint(
        victim="", cuts=dict(sealed_cuts), expect_steps=all_steps,
        label="manifest torn mid-body (shards rediscovered by name)",
        manifest="torn",
    ))
    return points


def apply_sharded(
    manifest_path: Path, point: ShardedCrashPoint, output_dir: Path
) -> Path:
    """Materialize one damaged campaign variant; returns its manifest path."""
    from repro.insitu.sharded import (
        _SERIES_META_KEYS,
        pack_manifest,
        parse_manifest,
    )

    manifest_path = Path(manifest_path)
    man = parse_manifest(manifest_path.read_bytes())
    output_dir.mkdir(parents=True, exist_ok=True)
    meta = {k: man[k] for k in _SERIES_META_KEYS}
    rows = [
        {"name": r["name"], "durability": r["durability"], "steps": []}
        for r in man["shards"]
    ]
    blob = pack_manifest(meta, rows, final=False)
    if point.manifest == "torn":
        blob = blob[: max(5, len(blob) // 2)]
    out_manifest = output_dir / manifest_path.name
    out_manifest.write_bytes(blob)
    for row in man["shards"]:
        raw = (manifest_path.parent / row["name"]).read_bytes()
        (output_dir / row["name"]).write_bytes(raw[: point.cuts[row["name"]]])
    return out_manifest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="enumerate injection points for a series")
    p.add_argument("input", type=Path)
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)

    p = sub.add_parser("apply", help="write one damaged variant")
    p.add_argument("input", type=Path)
    p.add_argument("--point", type=int, required=True,
                   help="index into `crashsim list` output")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("-o", "--output", type=Path, required=True)

    p = sub.add_parser("all", help="write every damaged variant into a directory")
    p.add_argument("input", type=Path)
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("-o", "--output", type=Path, required=True)

    p = sub.add_parser("sharded",
                       help="write killed-writer variants of an RPHM campaign")
    p.add_argument("input", type=Path, help="campaign manifest (.rphm)")
    p.add_argument("-o", "--output", type=Path, required=True)

    args = parser.parse_args(argv)

    if args.command == "sharded":
        for i, spt in enumerate(sharded_injection_points(args.input)):
            out = apply_sharded(args.input, spt,
                                args.output / f"{i:03d}_{spt.manifest}")
            print(f"{out}: survivors={list(spt.expect_steps)} — {spt.label}")
        return 0

    raw = args.input.read_bytes()
    points = injection_points(raw, seed=args.seed)

    if args.command == "list":
        for i, pt in enumerate(points):
            print(f"{i:>3} {pt.klass:<20} {pt.action:<8} @{pt.offset:<10} "
                  f"survivors={list(pt.expect_steps)} — {pt.label}")
        return 0
    if args.command == "apply":
        pt = points[args.point]
        args.output.write_bytes(apply(raw, pt))
        print(f"{args.output}: {pt.klass} ({pt.label})")
        return 0
    args.output.mkdir(parents=True, exist_ok=True)
    for i, pt in enumerate(points):
        target = args.output / f"{i:03d}_{pt.klass}.rph2s"
        target.write_bytes(apply(raw, pt))
        print(f"{target}: {pt.label}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
